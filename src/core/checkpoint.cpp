#include "core/checkpoint.hpp"

#include <memory>
#include <string>
#include <vector>

#include "io/io_batch.hpp"
#include "io/io_scheduler.hpp"

namespace mlpo {

namespace {

std::string ckpt_key(const Engine& engine, u32 id) {
  return "ckpt/" + std::to_string(engine.rank()) + "/" + std::to_string(id);
}

}  // namespace

CheckpointReport checkpoint_prestage(Engine& engine, StorageTier& store) {
  CheckpointReport report;
  const f64 start = engine.clock().now();

  // All checkpoint traffic rides the scheduler's external channel at
  // kCheckpoint priority: it never preempts demand fetches or gradient
  // deposits, and tiny pre-stage markers coalesce into single dispatch
  // batches. Engines without a scheduler (cpu_only) write synchronously.
  IoScheduler* io = engine.io();
  IoBatch batch;
  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    const Subgroup snapshot = engine.snapshot_subgroup(id);
    const u64 sim = snapshot.sim_state_bytes();
    report.total_sim_bytes += sim;

    auto buf = std::make_shared<std::vector<u8>>(snapshot.serialized_bytes());
    snapshot.serialize(*buf);
    const std::string key = ckpt_key(engine, id);
    u64 sim_bytes;
    if (engine.on_persistent_path(id)) {
      // Already durable where it lives: snapshot it in place (a server-side
      // copy / object clone on the PFS) so later training cannot overwrite
      // the checkpointed version. No client-network bytes are charged —
      // that is exactly the pre-staging saving.
      sim_bytes = 1;
      report.prestaged_sim_bytes += sim;
    } else {
      sim_bytes = sim;
      report.flushed_sim_bytes += sim;
    }
    if (io == nullptr) {
      store.write(key, *buf, sim_bytes);
      continue;
    }
    IoRequest req = IoRequest::external_op(IoOp::kWrite, &store, key,
                                           sim_bytes,
                                           IoPriority::kCheckpoint);
    req.work = [&store, buf, key, sim_bytes](IoChannel&) -> u64 {
      store.write(key, *buf, sim_bytes);
      return sim_bytes;
    };
    batch.add(io->submit(std::move(req)));
  }
  batch.wait_all();
  report.seconds = engine.clock().now() - start;
  return report;
}

u32 checkpoint_restore(Engine& engine, StorageTier& store) {
  IoScheduler* io = engine.io();
  u32 from_store = 0;
  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    const std::string key = ckpt_key(engine, id);
    if (store.exists(key)) {
      std::vector<u8> buf(store.object_size(key));
      if (io == nullptr) {
        store.read(key, buf);
      } else {
        IoRequest req = IoRequest::external_op(IoOp::kRead, &store, key,
                                               /*sim_bytes=*/0,
                                               IoPriority::kCheckpoint);
        req.dst = std::span<u8>(buf);
        io->submit(std::move(req)).get();
      }
      engine.restore_state(id, buf);
      ++from_store;
      continue;
    }
    // Pre-staged at checkpoint time: the persistent tier copy *is* the
    // checkpoint. It must still be there and still persistent.
    if (!engine.on_persistent_path(id)) {
      throw std::runtime_error(
          "checkpoint_restore: subgroup " + std::to_string(id) +
          " is neither in the checkpoint store nor on a persistent path");
    }
    // Re-anchor the host view: the tier copy is authoritative. Loading it
    // through restore_state also normalises the placement bookkeeping.
    const Subgroup snapshot = engine.snapshot_subgroup(id);
    std::vector<u8> buf(snapshot.serialized_bytes());
    snapshot.serialize(buf);
    engine.restore_state(id, buf);
  }
  return from_store;
}

}  // namespace mlpo
