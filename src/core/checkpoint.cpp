#include "core/checkpoint.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "io/io_batch.hpp"
#include "io/io_scheduler.hpp"

namespace mlpo {

namespace {

std::string ckpt_key(const Engine& engine, u32 id) {
  // Elastic layouts key checkpoint objects by *global* subgroup id: the
  // decomposition is world-size independent, so a snapshot written under
  // one node count restores under another (the sharding remap simply hands
  // each gid to whichever rank now owns it). Classic layouts keep the
  // per-rank keyspace.
  const ShardLayout& layout = engine.layout();
  if (layout.elastic()) {
    return "ckpt/g/" + std::to_string(layout.global_id(id));
  }
  return "ckpt/" + std::to_string(engine.rank()) + "/" + std::to_string(id);
}

}  // namespace

CheckpointReport checkpoint_prestage(Engine& engine, StorageTier& store) {
  CheckpointReport report;
  const f64 start = engine.clock().now();

  // All checkpoint traffic rides the scheduler's external channel at
  // kCheckpoint priority: it never preempts demand fetches or gradient
  // deposits, and tiny pre-stage markers coalesce into single dispatch
  // batches. Engines without a scheduler (cpu_only) write synchronously.
  IoScheduler* io = engine.io();
  IoBatch batch;
  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    const Subgroup snapshot = engine.snapshot_subgroup(id);
    const u64 sim = snapshot.sim_state_bytes();
    report.total_sim_bytes += sim;

    auto buf = std::make_shared<std::vector<u8>>(snapshot.serialized_bytes());
    snapshot.serialize(*buf);
    const std::string key = ckpt_key(engine, id);
    u64 sim_bytes;
    if (engine.on_persistent_path(id)) {
      // Already durable where it lives: snapshot it in place (a server-side
      // copy / object clone on the PFS) so later training cannot overwrite
      // the checkpointed version. No client-network bytes are charged —
      // that is exactly the pre-staging saving.
      sim_bytes = 1;
      report.prestaged_sim_bytes += sim;
    } else {
      sim_bytes = sim;
      report.flushed_sim_bytes += sim;
    }
    if (io == nullptr) {
      store.write(key, *buf, sim_bytes);
      continue;
    }
    IoRequest req = IoRequest::external_op(IoOp::kWrite, &store, key,
                                           sim_bytes,
                                           IoPriority::kCheckpoint);
    req.tenant = engine.tenant();
    req.work = [&store, buf, key, sim_bytes](IoChannel&) -> u64 {
      store.write(key, *buf, sim_bytes);
      return sim_bytes;
    };
    batch.add(io->submit(std::move(req)));
  }
  batch.wait_all();
  report.seconds = engine.clock().now() - start;
  return report;
}

u32 checkpoint_restore(Engine& engine, StorageTier& store) {
  IoScheduler* io = engine.io();
  u32 from_store = 0;
  // Store reads are submitted in one pass and collected in a second, like
  // prestage's batched writes: restore sits on the recovery hot path, and
  // serial per-subgroup round-trips would inflate the measured recovery
  // cost past what the scheduler can actually deliver.
  struct PendingLoad {
    u32 id;
    /// Shared with the request's work closure, so the buffer outlives the
    /// dispatch even if an exception unwinds this frame mid-submission.
    std::shared_ptr<std::vector<u8>> buf;
    std::future<void> done;
  };
  std::vector<PendingLoad> loads;
  for (u32 id = 0; id < engine.num_subgroups(); ++id) {
    const std::string key = ckpt_key(engine, id);
    if (store.exists(key)) {
      // Restoring is charged like the flush that wrote the object: the
      // subgroup's full simulated footprint (never less than the real
      // serialized object — at elem_scale > 1 the real image understates
      // the transfer). sim_bytes=0 here would bill the restore path zero
      // virtual I/O time while prestage bills full bytes, making
      // checkpoint-interval-vs-recovery-cost tradeoffs unmeasurable.
      const u64 sim_bytes =
          std::max<u64>(store.object_size(key),
                        engine.layout().subgroup_sizes.at(id) *
                            kOptimStateBytesPerParam);
      auto buf = std::make_shared<std::vector<u8>>(store.object_size(key));
      if (io == nullptr) {
        store.read(key, *buf, sim_bytes);
        engine.restore_state(id, *buf);
      } else {
        IoRequest req = IoRequest::external_op(IoOp::kRead, &store, key,
                                               sim_bytes,
                                               IoPriority::kCheckpoint);
        req.tenant = engine.tenant();
        req.work = [&store, buf, key, sim_bytes](IoChannel&) -> u64 {
          store.read(key, *buf, sim_bytes);
          return sim_bytes;
        };
        auto done = io->submit(std::move(req));
        loads.push_back({id, std::move(buf), std::move(done)});
      }
      ++from_store;
      continue;
    }
    // Pre-staged at checkpoint time: the persistent tier copy *is* the
    // checkpoint. It must still be there and still persistent. Note this
    // branch is a safety net for stores that really skipped the object
    // (e.g. an external pre-stage-aware checkpoint service):
    // checkpoint_prestage itself snapshots even pre-staged subgroups into
    // the store (at ~zero simulated cost), and restore prefers that copy
    // deliberately — the live tier copy may have been overwritten by
    // training after the snapshot, so it is only trustworthy when the
    // store has nothing.
    if (!engine.on_persistent_path(id)) {
      throw std::runtime_error(
          "checkpoint_restore: subgroup " + std::to_string(id) +
          " is neither in the checkpoint store nor on a persistent path");
    }
    // Re-anchor the host view: the tier copy is authoritative. Loading it
    // through restore_state also normalises the placement bookkeeping.
    const Subgroup snapshot = engine.snapshot_subgroup(id);
    std::vector<u8> buf(snapshot.serialized_bytes());
    snapshot.serialize(buf);
    engine.restore_state(id, buf);
  }

  // Collect the in-flight store reads; the shared buffers make an early
  // unwind safe, but every failure is still surfaced (first error wins).
  std::exception_ptr error;
  for (auto& load : loads) {
    try {
      load.done.get();
      if (!error) engine.restore_state(load.id, *load.buf);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  return from_store;
}

}  // namespace mlpo
