// TensorNVMe/Colossal-AI integration engine (paper §3.5): "the core
// principles of MLP-Offload make it extensible to other training runtimes,
// such as TensorNVMe in Colossal-AI, by specifying multiple DiskOffloader
// objects to create the virtual third-level tier, on each of which the
// corresponding subgroups dictated by our performance model can be
// offloaded."
//
// This engine is exactly that recipe behind the unified Engine interface:
// one DiskOffloader per storage path, the placement policy deciding which
// offloader holds which subgroup, and TensorNVMe's per-tensor
// async_write / async_read / synchronize discipline instead of
// OffloadEngine's prefetch pipeline. Fetches are synchronous per tensor
// (the facade's simplicity is the point); write-back stays asynchronous and
// drains at the end of the update phase. Numerically it is bit-identical
// to the other engines — the equivalence suite holds it to that.
#pragma once

#include <memory>
#include <vector>

#include "core/disk_offloader.hpp"
#include "core/engine.hpp"
#include "graph/graph_executor.hpp"
#include "policy/placement_policy.hpp"
#include "policy/update_order_policy.hpp"
#include "tiers/virtual_tier.hpp"
#include "train/grad_accum.hpp"
#include "util/aligned_buffer.hpp"
#include "util/mutex.hpp"
#include "util/work_stealing_pool.hpp"

namespace mlpo {

class TensorNvmeEngine final : public Engine {
 public:
  TensorNvmeEngine(const EngineContext& ctx, const EngineOptions& opts,
                   const ShardLayout& layout);

  void initialize() override;

  void deposit_gradients_async(u64 sample_index, u32 subgroup_id,
                               bool first_micro_step,
                               bool final_micro_step) override;
  void wait_gradient_io() override;

  IterationReport run_update(u64 iteration) override;

  const ShardLayout& layout() const override { return layout_; }
  u32 num_subgroups() const override {
    return static_cast<u32>(subgroups_.size());
  }
  const EngineOptions& options() const { return opts_; }
  PlacementPolicy& placement() { return *placement_; }

  Subgroup snapshot_subgroup(u32 id) const override {
    return *subgroups_.at(id);
  }
  u64 state_checksum() const override;
  Distribution distribution() const override;
  /// The working copies live in host buffers (TensorNVMe's model), but the
  /// authoritative state is on the offloaders — nothing is "cached".
  std::vector<u32> host_resident() const override { return {}; }
  bool on_persistent_path(u32 id) const override;
  void restore_state(u32 id, std::span<const u8> serialized) override;

  const SimClock& clock() const override { return *ctx_.clock; }
  int rank() const override { return ctx_.rank; }
  IoScheduler* io() const override { return ctx_.io; }
  u32 tenant() const override { return ctx_.tenant; }

 private:
  std::string state_key(u32 id) const;
  /// Scheduler traffic funnel — stamps the engine's tenant id on every
  /// request (the offloaders stamp their own; they get the id at
  /// construction).
  std::future<void> submit_io(IoRequest req);
  /// Pack host P/M/V into the subgroup's staging buffer (the tensor the
  /// offloader sees) / unpack it back.
  std::span<f32> pack_staging(u32 id);
  void unpack_staging(u32 id);
  /// Write subgroup `id`'s staging tensor to the offloader the placement
  /// policy currently assigns it, recording that location for later reads.
  void write_through(u32 id);
  // The two iteration execution modes (EngineOptions::execution).
  IterationReport run_update_linear(u64 iteration);
  IterationReport run_update_graph(u64 iteration);

  EngineContext ctx_;
  EngineOptions opts_;
  ShardLayout layout_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::unique_ptr<UpdateOrderPolicy> order_policy_;
  std::vector<std::unique_ptr<Subgroup>> subgroups_;
  /// One per usable VirtualTier path; placement indexes into this.
  std::vector<std::unique_ptr<DiskOffloader>> offloaders_;
  /// Offloader (== usable path) each subgroup's tensor was last written
  /// to. Reads must use this, not the live policy: a rebalance() between
  /// write and read may move the *assignment* while the bytes stay put.
  std::vector<std::size_t> stored_path_;
  /// Per-subgroup tensor staging ([params|momentum|variance] as f32);
  /// must outlive pending async writes (TensorNVMe's span contract).
  std::vector<std::vector<f32>> staging_;
  std::unique_ptr<GradAccumulator> accum_;
  IoBatch gradient_io_;
  /// Reserved-once scratch for the serial paths: deposits ride the single
  /// D2H link channel (one work function at a time per engine) and the
  /// linear update loop is single-threaded, so member buffers keep them
  /// allocation-free without a pool.
  std::vector<u16> grad_scratch_;
  std::vector<f32> fp32_scratch_;
  bool initialized_ = false;

  // Graph mode only (null under "linear").
  std::unique_ptr<WorkStealingPool> graph_pool_;
  std::unique_ptr<GraphExecutor> graph_exec_;
  /// FP32 gradient scratch for graph-mode compute nodes, which run
  /// concurrently on the work-stealing pool (unlike the serial paths
  /// above) and so draw leases instead of sharing a member buffer.
  std::unique_ptr<BufferPool> fp32_pool_;
  BufferPool::Stats pool_mark_{};
  /// Serializes graph-node access to the DiskOffloaders (their pending
  /// batches are plain future collectors, not thread-safe). The linear
  /// path never takes it.
  Mutex graph_mutex_;
};

}  // namespace mlpo
