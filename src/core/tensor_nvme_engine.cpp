#include "core/tensor_nvme_engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "policy/policy_registry.hpp"

namespace mlpo {

TensorNvmeEngine::TensorNvmeEngine(const EngineContext& ctx,
                                   const EngineOptions& opts,
                                   const ShardLayout& layout)
    : ctx_(ctx), opts_(opts), layout_(layout),
      placement_(make_placement_policy(opts.placement_policy)),
      order_policy_(make_update_order_policy(opts.update_order_policy)) {
  // Scalar checks only: this engine has no host cache and no prefetch
  // pipeline, so the cache/prefetch invariants do not apply to it.
  opts_.validate_common();
  if (ctx_.clock == nullptr || ctx_.vtier == nullptr || ctx_.io == nullptr ||
      ctx_.grads == nullptr) {
    throw std::invalid_argument(
        "TensorNvmeEngine: clock, vtier, io, and grads are required");
  }
  if (ctx_.vtier->path_count() == 0) {
    throw std::invalid_argument("TensorNvmeEngine: virtual tier has no paths");
  }

  // "Specifying multiple DiskOffloader objects to create the virtual
  // third-level tier": one offloader per usable path, or one (NVMe only)
  // without multipath.
  const std::size_t usable =
      opts_.multipath ? ctx_.vtier->path_count() : std::size_t{1};
  std::vector<f64> bandwidths;
  for (std::size_t p = 0; p < usable; ++p) {
    StorageTier& tier = ctx_.vtier->path(p);
    offloaders_.push_back(
        std::make_unique<DiskOffloader>(tier, *ctx_.io, ctx_.tenant));
    bandwidths.push_back(
        std::min(tier.read_bandwidth(), tier.write_bandwidth()));
  }

  std::vector<u64> accum_elems;
  for (std::size_t i = 0; i < layout_.subgroup_sizes.size(); ++i) {
    // Subgroup identity is the layout's global id (== the local index for
    // classic layouts) so state digests compare across elastic re-shards;
    // engine-internal indexing stays local.
    subgroups_.push_back(std::make_unique<Subgroup>(
        layout_.global_id(static_cast<u32>(i)), layout_.subgroup_sizes[i],
        opts_.elem_scale));
    accum_elems.push_back(subgroups_.back()->real_elems());
    staging_.emplace_back(subgroups_.back()->real_elems() * 3);
  }
  stored_path_.assign(subgroups_.size(), 0);
  accum_ = std::make_unique<GradAccumulator>(accum_elems);
  u64 max_elems = 1;
  for (const u64 e : accum_elems) max_elems = std::max(max_elems, e);
  grad_scratch_.reserve(max_elems);
  fp32_scratch_.reserve(max_elems);

  // The offloader facade has no per-transfer completion feedback (the
  // TensorNVMe API returns bare futures), so adaptive policies run from
  // their microbenchmark seeds here — the paper's "dictated by our
  // performance model" static split.
  placement_->bind(std::move(bandwidths),
                   static_cast<u32>(subgroups_.size()));

  if (opts_.execution == "graph") {
    graph_pool_ =
        std::make_unique<WorkStealingPool>(opts_.resolved_graph_workers());
    graph_exec_ = std::make_unique<GraphExecutor>(*graph_pool_);
    // Every pool worker can hold one compute node's FP32 scratch at a
    // time; the +2 slack keeps acquire() from ever blocking a worker.
    BufferPool::Options pool_opts;
    pool_opts.slab_bytes = (opts_.resolved_graph_workers() + 2) *
                           max_elems * sizeof(f32);
    fp32_pool_ = std::make_unique<BufferPool>(pool_opts);
  }
}

std::string TensorNvmeEngine::state_key(u32 id) const {
  // Co-tenants on a shared VirtualTier get their own key namespace (two
  // jobs reuse the same ranks); tenant 0 keeps the historical keys.
  std::string key =
      "tnvme/" + std::to_string(ctx_.rank) + "/" + std::to_string(id);
  if (ctx_.tenant == 0) return key;
  return "t" + std::to_string(ctx_.tenant) + "/" + key;
}

std::span<f32> TensorNvmeEngine::pack_staging(u32 id) {
  const Subgroup& sg = *subgroups_[id];
  auto& buf = staging_[id];
  const std::size_t n = sg.real_elems();
  std::copy(sg.params().begin(), sg.params().end(), buf.begin());
  std::copy(sg.momentum().begin(), sg.momentum().end(), buf.begin() + n);
  std::copy(sg.variance().begin(), sg.variance().end(), buf.begin() + 2 * n);
  return buf;
}

void TensorNvmeEngine::unpack_staging(u32 id) {
  Subgroup& sg = *subgroups_[id];
  const auto& buf = staging_[id];
  const std::size_t n = sg.real_elems();
  std::copy(buf.begin(), buf.begin() + n, sg.params().begin());
  std::copy(buf.begin() + n, buf.begin() + 2 * n, sg.momentum().begin());
  std::copy(buf.begin() + 2 * n, buf.end(), sg.variance().begin());
}

std::future<void> TensorNvmeEngine::submit_io(IoRequest req) {
  req.tenant = ctx_.tenant;
  return ctx_.io->submit(std::move(req));
}

void TensorNvmeEngine::write_through(u32 id) {
  const std::size_t path = placement_->path_for(id);
  offloaders_[path]->async_write(state_key(id), pack_staging(id),
                                 subgroups_[id]->sim_state_bytes());
  stored_path_[id] = path;
}

void TensorNvmeEngine::initialize() {
  if (initialized_) {
    throw std::logic_error("TensorNvmeEngine: double initialize");
  }
  for (u32 id = 0; id < num_subgroups(); ++id) {
    Subgroup& sg = *subgroups_[id];
    Subgroup::deterministic_param_init(layout_.content_rank(), sg.id(),
                                       sg.params());
    write_through(id);
  }
  for (auto& off : offloaders_) off->synchronize();
  initialized_ = true;
}

void TensorNvmeEngine::deposit_gradients_async(u64 sample_index,
                                               u32 subgroup_id,
                                               bool first_micro_step,
                                               bool /*final_micro_step*/) {
  Subgroup& sg = *subgroups_.at(subgroup_id);
  const u64 sim_params = sg.sim_params();
  const u64 real_elems = sg.real_elems();
  // FP16 gradients stream over the D2H link and accumulate on the host —
  // the facade always runs the delayed-conversion discipline.
  IoRequest req = IoRequest::link_transfer(
      IoTarget::kD2HLink, state_key(subgroup_id), sim_params * kFp16Bytes,
      IoPriority::kGradDeposit);
  req.work = [this, sample_index, subgroup_id, first_micro_step, sim_params,
              real_elems](IoChannel& link) -> u64 {
    link.transfer(sim_params * kFp16Bytes);
    // Member scratch is safe here: all deposit work functions dispatch on
    // the one D2H link channel, so they are serial per engine.
    grad_scratch_.resize(real_elems);
    ctx_.grads->generate_fp16(layout_.content_rank(),
                              layout_.global_id(subgroup_id), sample_index,
                              grad_scratch_);
    if (first_micro_step) {
      accum_->store(subgroup_id, grad_scratch_);
    } else {
      accum_->accumulate(subgroup_id, grad_scratch_, ctx_.cpu_pool);
    }
    return sim_params * kFp16Bytes;
  };
  gradient_io_.add(submit_io(std::move(req)));
}

void TensorNvmeEngine::wait_gradient_io() { gradient_io_.wait_all(); }

IterationReport TensorNvmeEngine::run_update(u64 iteration) {
  if (!initialized_) {
    throw std::logic_error("TensorNvmeEngine: run_update before initialize");
  }
  return opts_.execution == "graph" ? run_update_graph(iteration)
                                    : run_update_linear(iteration);
}

IterationReport TensorNvmeEngine::run_update_linear(u64 iteration) {
  const f64 phase_start = ctx_.clock->now();
  const u32 n = num_subgroups();
  placement_->rebalance();
  const std::vector<u32> order = order_policy_->order(n, iteration, {});
  validate_order_permutation(order, n, order_policy_->name());

  IterationReport report;
  report.iteration = iteration;
  std::vector<f32>& grads_fp32 = fp32_scratch_;

  for (const u32 id : order) {
    Subgroup& sg = *subgroups_[id];
    SubgroupTrace trace{};
    trace.subgroup_id = id;

    // TensorNVMe discipline: synchronous per-tensor read of the subgroup
    // tensor from the offloader it was last written to (no prefetch
    // pipeline).
    {
      SimTimer read_timer(*ctx_.clock);
      offloaders_[stored_path_[id]]
          ->async_read(state_key(id), staging_[id], sg.sim_state_bytes())
          .get();
      unpack_staging(id);
      trace.read_seconds = read_timer.elapsed();
      trace.sim_bytes_read = sg.sim_state_bytes();
    }

    SimTimer kernel_timer(*ctx_.clock);
    grads_fp32.resize(sg.real_elems());
    accum_->upscale_into(id, grads_fp32, ctx_.cpu_pool);
    ctx_.clock->sleep_for(opts_.convert.seconds_for_params(sg.sim_params()));

    sg.set_step(sg.step() + 1);
    adam_update(opts_.adam, sg.params(), sg.momentum(), sg.variance(),
                grads_fp32, sg.step(), ctx_.cpu_pool);
    const f64 budget =
        static_cast<f64>(sg.sim_params()) / opts_.cpu_update_rate;
    const f64 real = kernel_timer.elapsed();
    if (budget > real) ctx_.clock->sleep_for(budget - real);
    trace.compute_seconds = budget;

    // H2D push of the updated FP16 parameters, then asynchronous
    // write-back through the offloader (drained at the phase barrier) —
    // the write adopts the policy's current assignment, so a rebalance
    // migrates subgroups one update phase at a time.
    {
      IoRequest h2d = IoRequest::link_transfer(
          IoTarget::kH2DLink, state_key(id), sg.sim_fp16_param_bytes(),
          IoPriority::kDemandPrefetch);
      submit_io(std::move(h2d)).get();
    }
    write_through(id);
    trace.sim_bytes_written = sg.sim_state_bytes();

    report.traces.push_back(trace);
    report.sim_bytes_fetched += trace.sim_bytes_read;
    report.sim_bytes_flushed += trace.sim_bytes_written;
    report.fetch_seconds += trace.read_seconds;
    report.update_compute_seconds += trace.compute_seconds;
    ++report.subgroups_processed;
  }

  {
    SimTimer flush_timer(*ctx_.clock);
    for (auto& off : offloaders_) off->synchronize();
    report.flush_seconds = flush_timer.elapsed();
  }
  report.params_updated = layout_.shard_params;
  report.update_seconds = ctx_.clock->now() - phase_start;
  return report;
}

IterationReport TensorNvmeEngine::run_update_graph(u64 iteration) {
  // Graph form of the TensorNVMe discipline: per subgroup a fetch ->
  // compute -> {h2d, flush} chain. The per-tensor futures stay — a fetch
  // node blocks its pool worker on the offloader's read future (the
  // facade has no settle hook to defer on), but chains for different
  // subgroups overlap freely, which the serial per-tensor loop never
  // could. Offloader calls are serialized under graph_mutex_ (their
  // pending batches are plain future collectors); the blocking get()
  // happens outside the lock.
  const f64 phase_start = ctx_.clock->now();
  const u32 n = num_subgroups();
  placement_->rebalance();
  const std::vector<u32> order = order_policy_->order(n, iteration, {});
  validate_order_permutation(order, n, order_policy_->name());

  std::vector<SubgroupTrace> traces(n);
  for (u32 id = 0; id < n; ++id) traces[id].subgroup_id = id;

  TaskGraph graph;
  for (u32 pos = 0; pos < n; ++pos) {
    const u32 id = order[pos];
    const std::string tag = std::to_string(id);
    const u32 fetch = graph.add_node(
        NodeKind::kFetch, "fetch:" + tag, pos,
        [this, id, &traces](TaskContext&) {
          Subgroup& sg = *subgroups_[id];
          SimTimer read_timer(*ctx_.clock);
          std::future<void> fut;
          {
            MutexLock lock(graph_mutex_);
            fut = offloaders_[stored_path_[id]]->async_read(
                state_key(id), staging_[id], sg.sim_state_bytes());
          }
          fut.get();
          unpack_staging(id);
          traces[id].read_seconds = read_timer.elapsed();
          traces[id].sim_bytes_read = sg.sim_state_bytes();
        });
    const u32 compute = graph.add_node(
        NodeKind::kCompute, "update:" + tag, pos,
        [this, id, &traces](TaskContext&) {
          Subgroup& sg = *subgroups_[id];
          SimTimer kernel_timer(*ctx_.clock);
          BufferPool::Lease lease =
              fp32_pool_->acquire(sg.real_elems() * sizeof(f32));
          const std::span<f32> grads_fp32 = lease.as<f32>();
          accum_->upscale_into(id, grads_fp32, ctx_.cpu_pool);
          ctx_.clock->sleep_for(
              opts_.convert.seconds_for_params(sg.sim_params()));
          sg.set_step(sg.step() + 1);
          adam_update(opts_.adam, sg.params(), sg.momentum(), sg.variance(),
                      grads_fp32, sg.step(), ctx_.cpu_pool);
          const f64 budget =
              static_cast<f64>(sg.sim_params()) / opts_.cpu_update_rate;
          const f64 real = kernel_timer.elapsed();
          if (budget > real) ctx_.clock->sleep_for(budget - real);
          traces[id].compute_seconds = budget;
        });
    graph.add_edge(fetch, compute);
    const u32 h2d = graph.add_node(
        NodeKind::kCompute, "h2d:" + tag, pos, [this, id](TaskContext& tc) {
          Subgroup& sg = *subgroups_[id];
          auto done = tc.defer();
          IoRequest h2d_req = IoRequest::link_transfer(
              IoTarget::kH2DLink, state_key(id), sg.sim_fp16_param_bytes(),
              IoPriority::kDemandPrefetch);
          h2d_req.on_settle = [done](std::exception_ptr e) {
            done(std::move(e));
          };
          submit_io(std::move(h2d_req));
        });
    graph.add_edge(compute, h2d);
    const u32 flush = graph.add_node(
        NodeKind::kFlush, "flush:" + tag, pos,
        [this, id, &traces](TaskContext&) {
          MutexLock lock(graph_mutex_);
          write_through(id);
          traces[id].sim_bytes_written = subgroups_[id]->sim_state_bytes();
        });
    graph.add_edge(compute, flush);
  }

  const GraphExecutor::Stats stats = graph_exec_->run(graph, [this] {
    // First failure: abandon queued demand reads so the unwind is not
    // serialized behind reads that would each dispatch just to fail.
    // Tenant-scoped — neighbours on a shared scheduler are untouched.
    ctx_.io->cancel_queued(IoPriority::kDemandPrefetch, ctx_.tenant);
  });

  IterationReport report;
  report.iteration = iteration;
  report.subgroups_processed = n;
  report.params_updated = layout_.shard_params;
  report.traces.reserve(n);
  for (u32 pos = 0; pos < n; ++pos) {
    const SubgroupTrace& t = traces[order[pos]];
    report.traces.push_back(t);
    report.sim_bytes_fetched += t.sim_bytes_read;
    report.sim_bytes_flushed += t.sim_bytes_written;
    report.fetch_seconds += t.read_seconds;
    report.update_compute_seconds += t.compute_seconds;
  }
  {
    SimTimer flush_timer(*ctx_.clock);
    for (auto& off : offloaders_) off->synchronize();
    report.flush_seconds = flush_timer.elapsed();
  }
  report.update_seconds = ctx_.clock->now() - phase_start;
  report.graph_frontier_high_water = stats.frontier_high_water;
  report.graph_tasks_stolen = stats.tasks_stolen;
  report.graph_executor_idle_seconds = stats.idle_seconds;
  const BufferPool::Stats pool_now = fp32_pool_->stats();
  report.pool_acquires = pool_now.acquires - pool_mark_.acquires;
  report.pool_heap_fallbacks =
      pool_now.heap_fallbacks - pool_mark_.heap_fallbacks;
  pool_mark_ = pool_now;
  return report;
}

u64 TensorNvmeEngine::state_checksum() const {
  u64 sum = 0;
  for (const auto& sg : subgroups_) sum += sg->checksum();
  return sum;
}

Engine::Distribution TensorNvmeEngine::distribution() const {
  Distribution dist;
  dist.path_sim_bytes.assign(ctx_.vtier->path_count(), 0);
  for (u32 id = 0; id < num_subgroups(); ++id) {
    dist.path_sim_bytes[stored_path_[id]] +=
        subgroups_[id]->sim_state_bytes();
  }
  return dist;
}

bool TensorNvmeEngine::on_persistent_path(u32 id) const {
  return ctx_.vtier->path(stored_path_.at(id)).persistent();
}

void TensorNvmeEngine::restore_state(u32 id, std::span<const u8> serialized) {
  Subgroup& sg = *subgroups_.at(id);
  sg.deserialize(serialized);
  write_through(id);
  offloaders_[stored_path_[id]]->synchronize();
}

}  // namespace mlpo
