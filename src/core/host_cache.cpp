#include "core/host_cache.hpp"

namespace mlpo {

HostCache::HostCache(u32 capacity) : capacity_(capacity) {
  nodes_.resize(capacity_);
  // Thread every slot onto the free chain.
  for (u32 i = 0; i < capacity_; ++i) {
    nodes_[i].next = (i + 1 < capacity_) ? i + 1 : kNone;
  }
  free_ = capacity_ > 0 ? 0 : kNone;
}

void HostCache::detach(u32 slot) {
  Node& n = nodes_[slot];
  if (n.prev != kNone) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNone) {
    nodes_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
  n.prev = n.next = kNone;
}

void HostCache::append_mru(u32 slot) {
  Node& n = nodes_[slot];
  n.prev = tail_;
  n.next = kNone;
  if (tail_ != kNone) {
    nodes_[tail_].next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;
}

void HostCache::touch(u32 id) {
  const u32 slot = slot_for(id);
  if (slot == kNone) return;
  detach(slot);
  append_mru(slot);
}

std::optional<u32> HostCache::insert(u32 id) {
  if (capacity_ == 0) return id;
  const u32 existing = slot_for(id);
  if (existing != kNone) {
    detach(existing);
    append_mru(existing);
    return std::nullopt;
  }
  std::optional<u32> evicted;
  u32 slot;
  if (size_ >= capacity_) {
    // Recycle the LRU victim's slot in place.
    slot = head_;
    evicted = nodes_[slot].id;
    slot_of_[nodes_[slot].id] = kNone;
    detach(slot);
    --size_;
  } else {
    slot = free_;
    free_ = nodes_[slot].next;
    nodes_[slot].prev = nodes_[slot].next = kNone;
  }
  nodes_[slot].id = id;
  if (id >= slot_of_.size()) slot_of_.resize(id + 1, kNone);
  slot_of_[id] = slot;
  append_mru(slot);
  ++size_;
  return evicted;
}

void HostCache::erase(u32 id) {
  const u32 slot = slot_for(id);
  if (slot == kNone) return;
  slot_of_[id] = kNone;
  detach(slot);
  nodes_[slot].id = kNone;
  nodes_[slot].next = free_;
  free_ = slot;
  --size_;
}

std::vector<u32> HostCache::resident() const {
  std::vector<u32> out;
  out.reserve(size_);
  for (u32 s = head_; s != kNone; s = nodes_[s].next) {
    out.push_back(nodes_[s].id);
  }
  return out;
}

}  // namespace mlpo
