#include "core/host_cache.hpp"

namespace mlpo {

void HostCache::touch(u32 id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  lru_.splice(lru_.end(), lru_, it->second);
}

std::optional<u32> HostCache::insert(u32 id) {
  if (capacity_ == 0) return id;
  const auto it = index_.find(id);
  if (it != index_.end()) {
    lru_.splice(lru_.end(), lru_, it->second);
    return std::nullopt;
  }
  std::optional<u32> evicted;
  if (lru_.size() >= capacity_) {
    evicted = lru_.front();
    index_.erase(lru_.front());
    lru_.pop_front();
  }
  lru_.push_back(id);
  index_[id] = std::prev(lru_.end());
  return evicted;
}

void HostCache::erase(u32 id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

std::vector<u32> HostCache::resident() const {
  return {lru_.begin(), lru_.end()};
}

}  // namespace mlpo
