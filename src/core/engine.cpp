#include "core/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "core/cpu_only_engine.hpp"
#include "core/offload_engine.hpp"
#include "core/tensor_nvme_engine.hpp"
#include "policy/policy_registry.hpp"

namespace mlpo {

void EngineOptions::validate() const {
  // Resolving the names validates them (unknown -> invalid_argument
  // listing the registered policies).
  make_placement_policy(placement_policy);
  validate_resolved(*make_update_order_policy(update_order_policy));
}

void EngineOptions::validate_common() const {
  if (cpu_update_rate <= 0) {
    throw std::invalid_argument(
        "EngineOptions: cpu_update_rate=" + std::to_string(cpu_update_rate) +
        " must be > 0 (simulated params per vsecond)");
  }
  if (elem_scale == 0) {
    throw std::invalid_argument(
        "EngineOptions: elem_scale must be >= 1 (simulated params per real "
        "element)");
  }
  if (execution != "linear" && execution != "graph") {
    throw std::invalid_argument("EngineOptions: unknown execution mode '" +
                                execution + "' (known: linear graph)");
  }
}

u32 EngineOptions::resolved_graph_workers() const {
  if (graph_workers != 0) return std::max<u32>(2, graph_workers);
  const u32 hw = std::thread::hardware_concurrency();
  return std::clamp<u32>(hw == 0 ? 4 : hw, 2, 8);
}

void EngineOptions::validate_resolved(const UpdateOrderPolicy& order) const {
  validate_common();
  if (order.uses_host_cache()) {
    if (host_cache_subgroups == 0) {
      throw std::invalid_argument(
          "EngineOptions: update_order_policy '" + update_order_policy +
          "' exploits the host cache but host_cache_subgroups is 0; pick a "
          "non-caching policy (e.g. 'ascending') or grant cache capacity");
    }
    // A cached subgroup is touched (made MRU) when its prefetch slot is
    // issued, up to prefetch_ahead positions before it is processed. The
    // cache must be deep enough that the insertions from those intervening
    // positions cannot evict it again, or a hit would consume poisoned
    // state mid-flush.
    if (host_cache_subgroups < prefetch_ahead + 1) {
      throw std::invalid_argument(
          "EngineOptions: host_cache_subgroups=" +
          std::to_string(host_cache_subgroups) +
          " must be >= prefetch_ahead+1 (=" +
          std::to_string(prefetch_ahead + 1) +
          ") for cache-exploiting order policy '" + update_order_policy +
          "'");
    }
  } else if (prefetch_ahead == 0) {
    // A non-caching order policy runs the engine with a zero-capacity
    // cache no matter what the knob says, so the "empty host cache" half
    // of this condition is decided by the policy, not host_cache_subgroups.
    throw std::invalid_argument(
        "EngineOptions: prefetch_ahead=0 with the non-caching order policy "
        "'" + update_order_policy +
        "' leaves the pipeline with neither overlap nor reuse; set "
        "prefetch_ahead >= 1 or pick a cache-exploiting order policy");
  }
}

EngineOptions EngineOptions::preset(const std::string& name) {
  // Every bundle is expressed as a delta on the defaults, so a new
  // EngineOptions field automatically participates in all presets.
  EngineOptions o;
  if (name == "mlp_offload") return o;
  if (name == "deepspeed_zero3") {
    o.multipath = false;
    o.placement_policy = "eq1_static";  // single path: nothing to adapt
    o.update_order_policy = "ascending";
    o.delayed_grad_conversion = false;
    o.tier_exclusive_locking = false;
    return o;
  }
  if (name == "multipath_caching") {  // Fig. 15 step 1
    o.delayed_grad_conversion = false;
    o.tier_exclusive_locking = false;
    return o;
  }
  if (name == "mp_skip_grads") {  // Fig. 15 step 2
    o.tier_exclusive_locking = false;
    return o;
  }
  if (name == "mlp_offload_static") {  // adaptive-model ablation arm
    o.placement_policy = "eq1_static";
    return o;
  }
  if (name == "cpu_only") {
    o.engine = "cpu_only";
    return o;
  }
  if (name == "tensor_nvme") {
    o.engine = "tensor_nvme";
    return o;
  }
  std::string known;
  for (const auto& p : preset_names()) known += " " + p;
  throw std::invalid_argument("EngineOptions: unknown preset '" + name +
                              "' (known:" + known + ")");
}

std::vector<std::string> EngineOptions::preset_names() {
  return {"deepspeed_zero3", "multipath_caching", "mp_skip_grads",
          "mlp_offload",     "mlp_offload_static", "cpu_only",
          "tensor_nvme"};
}

EngineOptions EngineOptions::deepspeed_zero3() {
  return preset("deepspeed_zero3");
}

EngineOptions EngineOptions::mlp_offload() { return preset("mlp_offload"); }

std::unique_ptr<Engine> make_engine(const EngineContext& ctx,
                                    const EngineOptions& opts,
                                    const ShardLayout& layout) {
  // Validation happens inside each engine's constructor (so direct
  // construction is covered by the same checks).
  if (opts.engine == "offload") {
    return std::make_unique<OffloadEngine>(ctx, opts, layout);
  }
  if (opts.engine == "cpu_only") {
    if (ctx.clock == nullptr || ctx.grads == nullptr) {
      throw std::invalid_argument(
          "make_engine: cpu_only needs clock and grads");
    }
    CpuOnlyEngine::Options cpu;
    cpu.cpu_update_rate = opts.cpu_update_rate;
    cpu.convert = opts.convert;
    cpu.adam = opts.adam;
    cpu.elem_scale = opts.elem_scale;
    return std::make_unique<CpuOnlyEngine>(*ctx.clock, *ctx.grads, layout,
                                           cpu, ctx.cpu_pool,
                                           /*d2h=*/nullptr, ctx.io,
                                           ctx.tenant);
  }
  if (opts.engine == "tensor_nvme") {
    return std::make_unique<TensorNvmeEngine>(ctx, opts, layout);
  }
  std::string known;
  for (const auto& k : engine_kind_names()) known += " " + k;
  throw std::invalid_argument("make_engine: unknown engine kind '" +
                              opts.engine + "' (known:" + known + ")");
}

std::vector<std::string> engine_kind_names() {
  return {"offload", "cpu_only", "tensor_nvme"};
}

}  // namespace mlpo
