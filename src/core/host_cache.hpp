// Host-memory residency tracker for optimizer subgroups.
//
// The host memory left over after runtime buffers holds a limited number of
// subgroups between iterations. This class tracks which — an LRU set with a
// hard capacity. Eviction is decided here; the *flush* of an evicted (dirty)
// subgroup is the engine's job, so the cache stays a pure bookkeeping
// structure.
//
// The LRU list is intrusive over a fixed node slab sized to `capacity` at
// construction, with an id-indexed slot table: touch/insert/erase are O(1)
// pointer surgery with zero steady-state heap traffic, unlike the
// std::list + unordered_map version this replaced (one node allocation per
// insert — churn on the exact path the pooled-buffer work de-churns).
#pragma once

#include <optional>
#include <vector>

#include "util/common.hpp"

namespace mlpo {

class HostCache {
 public:
  /// @param capacity maximum resident subgroups; 0 disables caching
  ///        entirely (insert() immediately returns the inserted id).
  explicit HostCache(u32 capacity);

  u32 capacity() const { return capacity_; }
  u32 size() const { return size_; }

  bool contains(u32 id) const { return slot_for(id) != kNone; }

  /// Mark `id` most-recently-used (no-op if absent).
  void touch(u32 id);

  /// Insert `id` as most-recently-used. Returns the evicted id when the
  /// cache was full (the caller must flush it), or `id` itself when
  /// capacity is 0, or nullopt when there was room.
  std::optional<u32> insert(u32 id);

  /// Remove `id` without eviction bookkeeping (e.g. explicitly flushed).
  void erase(u32 id);

  /// Resident ids, least-recently-used first.
  std::vector<u32> resident() const;

 private:
  static constexpr u32 kNone = static_cast<u32>(-1);

  struct Node {
    u32 id = kNone;
    u32 prev = kNone;
    u32 next = kNone;
  };

  /// Slot holding `id`, or kNone when not resident.
  u32 slot_for(u32 id) const {
    return id < slot_of_.size() ? slot_of_[id] : kNone;
  }
  void detach(u32 slot);       ///< unlink from the LRU list
  void append_mru(u32 slot);   ///< link at the most-recently-used end

  u32 capacity_;
  u32 size_ = 0;
  u32 head_ = kNone;  ///< LRU victim
  u32 tail_ = kNone;  ///< most recent
  u32 free_ = kNone;  ///< free-slot chain threaded through Node::next
  std::vector<Node> nodes_;  ///< capacity_ slots, allocated once
  /// id -> slot; grows to the largest id ever seen and then stays put
  /// (subgroup ids are dense and fixed after layout, so this settles
  /// during the first iteration).
  std::vector<u32> slot_of_;
};

}  // namespace mlpo
