// Host-memory residency tracker for optimizer subgroups.
//
// The host memory left over after runtime buffers holds a limited number of
// subgroups between iterations. This class tracks which — an LRU set with a
// hard capacity. Eviction is decided here; the *flush* of an evicted (dirty)
// subgroup is the engine's job, so the cache stays a pure bookkeeping
// structure.
#pragma once

#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/common.hpp"

namespace mlpo {

class HostCache {
 public:
  /// @param capacity maximum resident subgroups; 0 disables caching
  ///        entirely (insert() immediately returns the inserted id).
  explicit HostCache(u32 capacity) : capacity_(capacity) {}

  u32 capacity() const { return capacity_; }
  u32 size() const { return static_cast<u32>(lru_.size()); }

  bool contains(u32 id) const { return index_.count(id) > 0; }

  /// Mark `id` most-recently-used (no-op if absent).
  void touch(u32 id);

  /// Insert `id` as most-recently-used. Returns the evicted id when the
  /// cache was full (the caller must flush it), or `id` itself when
  /// capacity is 0, or nullopt when there was room.
  std::optional<u32> insert(u32 id);

  /// Remove `id` without eviction bookkeeping (e.g. explicitly flushed).
  void erase(u32 id);

  /// Resident ids, least-recently-used first.
  std::vector<u32> resident() const;

 private:
  u32 capacity_;
  std::list<u32> lru_;  // front = LRU victim, back = most recent
  std::unordered_map<u32, std::list<u32>::iterator> index_;
};

}  // namespace mlpo
