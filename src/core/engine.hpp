// The unified optimizer-update engine interface.
//
// Three engines implement it:
//   * OffloadEngine    — the MLP-Offload pipeline (paper §3.4, Alg. 1) and,
//                        under the "deepspeed_zero3" preset, the DeepSpeed
//                        ZeRO-3 + DeepNVMe baseline;
//   * CpuOnlyEngine    — host-memory-resident update, the paper's "20B CPU"
//                        reference (Fig. 3);
//   * TensorNvmeEngine — the TensorNVMe/Colossal-AI integration facade
//                        (paper §3.5) over per-path DiskOffloaders.
// Worker, Trainer, Checkpoint, and the bench harness consume the interface
// polymorphically; make_engine() selects the implementation by name.
//
// Placement and update ordering are NOT part of an engine: they are
// pluggable policies (src/policy/) selected by name in EngineOptions. The
// presets bundle policy selections the paper's ablations compare.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "telemetry/iteration_report.hpp"
#include "train/adam.hpp"
#include "train/grad_source.hpp"
#include "train/mixed_precision.hpp"
#include "train/sharding.hpp"
#include "train/subgroup.hpp"
#include "util/sim_clock.hpp"
#include "util/thread_pool.hpp"

namespace mlpo {

class IoScheduler;
class UpdateOrderPolicy;
class VirtualTier;

struct EngineOptions {
  /// Which Engine implementation make_engine() builds:
  /// "offload" | "cpu_only" | "tensor_nvme".
  std::string engine = "offload";

  /// Design principle 1 precondition: expose all VirtualTier paths to the
  /// placement policy. Off: the policy sees only path 0 (NVMe-only
  /// baseline topology).
  bool multipath = true;

  /// Subgroup -> storage-path strategy, by policy-registry name
  /// (policy/policy_registry.hpp lists the built-ins). The paper's Eq. 1
  /// model is "adaptive_ema"; its static ablation arm is "eq1_static".
  std::string placement_policy = "adaptive_ema";

  /// Subgroup processing-order strategy, by policy-registry name. Policies
  /// whose schedule exploits the host cache also select the lazy
  /// flush-through-cache discipline (design principle 3); "ascending" is
  /// the eager-flush DeepSpeed behaviour.
  std::string update_order_policy = "alternating_cache_friendly";

  /// Iteration execution mode: "linear" runs the phase-sequential pipeline
  /// (Alg. 1's fixed prefetch window), "graph" builds a per-iteration task
  /// DAG and schedules it on a work-stealing pool so the IoScheduler sees
  /// the full frontier of ready transfers. Bit-identical results either
  /// way (the equivalence suite holds both engines to that); the order
  /// policy becomes a tie-break among ready nodes under "graph".
  std::string execution = "linear";

  /// Worker threads of the graph-mode pool; 0 = auto (hardware
  /// concurrency, clamped to [2, 8] so emulation hosts with many cores do
  /// not multiply scaled-time noise). Ignored under "linear".
  u32 graph_workers = 0;

  /// The pool size graph-mode engines actually spawn: graph_workers when
  /// set (floored at 2 — a one-worker pool can never steal), else the
  /// auto clamp described above.
  u32 resolved_graph_workers() const;

  /// Design principle 4: keep FP16 gradients on the host and upscale
  /// during the update. Off: upscale + flush FP32 gradients during the
  /// backward pass and fetch them with the subgroup (16 B/param payloads).
  bool delayed_grad_conversion = true;

  /// Design principle 2: node-level process-exclusive tier locking. Off:
  /// all workers hit the tiers concurrently and pay contention penalties.
  /// Consumed when configuring the worker's IoScheduler (the engine itself
  /// never takes a lock; its scheduler's channels do).
  bool tier_exclusive_locking = true;

  /// Subgroups the host can keep resident between iterations (beyond the
  /// pipeline's in-flight slots). Sized from free host memory in practice.
  u32 host_cache_subgroups = 3;
  /// Outstanding prefetches beyond the subgroup being updated (the paper's
  /// host buffers hold 3 subgroups: flushing / updating / prefetching).
  u32 prefetch_ahead = 1;
  /// This worker's CPU update throughput, simulated params per vsecond
  /// (paper cites ~8000 Mparam/s per node when state is host-resident).
  f64 cpu_update_rate = 2000e6;
  /// FP16->FP32 conversion throughput model (paper: ~65 GB/s on CPU).
  ConvertCost convert;
  AdamConfig adam;
  /// Scale reduction: simulated params per real element (1 = full fidelity).
  u64 elem_scale = 1;

  /// Strict construction-time validation (same philosophy as util/env:
  /// a misconfigured engine must abort loudly, not silently measure the
  /// wrong thing). Throws std::invalid_argument naming the bad field.
  /// Checks: positive cpu_update_rate, elem_scale >= 1, policy names
  /// resolvable, a cache-exploiting order policy needs a non-empty host
  /// cache, and prefetch_ahead == 0 with an empty host cache (a pipeline
  /// with neither overlap nor reuse) is rejected.
  void validate() const;
  /// The same checks against an already-constructed order policy —
  /// engines that just built their policy members call this so a single
  /// construction does not resolve each policy name twice.
  void validate_resolved(const UpdateOrderPolicy& order) const;
  /// Just the scalar checks (cpu_update_rate, elem_scale) — for engines
  /// with no host cache or prefetch pipeline (tensor_nvme), where the
  /// cache/prefetch invariants do not apply.
  void validate_common() const;

  /// Named preset bundles (the paper's ablation steps as policy bundles):
  ///   "deepspeed_zero3"    all principles off (ZeRO-3 + DeepNVMe baseline)
  ///   "multipath_caching"  + multi-path placement + cache-friendly order
  ///   "mp_skip_grads"      + delayed gradient conversion
  ///   "mlp_offload"        + tier-exclusive locking (full MLP-Offload)
  ///   "mlp_offload_static" full MLP-Offload with static Eq. 1 placement
  ///   "cpu_only"           host-resident CpuOnlyEngine reference
  ///   "tensor_nvme"        TensorNVMe facade with MLP-Offload policies
  /// Throws std::invalid_argument for unknown names, listing the bundles.
  static EngineOptions preset(const std::string& name);
  static std::vector<std::string> preset_names();

  /// Baseline preset: DeepSpeed-ZeRO-3-style NVMe offloading.
  static EngineOptions deepspeed_zero3();
  /// Full MLP-Offload preset.
  static EngineOptions mlp_offload();
};

/// Wiring to node-shared infrastructure. Raw pointers are non-owning; all
/// referenced objects must outlive the engine.
///
/// All tier and link traffic goes through the IoScheduler: engines never
/// touch a TierLock or a RateLimiter. The scheduler must be configured
/// with this worker's locking policy (see IoScheduler::Config::
/// tier_exclusive_locking / worker_id — the Worker wires this from
/// EngineOptions).
struct EngineContext {
  const SimClock* clock = nullptr;
  VirtualTier* vtier = nullptr;    ///< third-level storage (node-shared)
  IoScheduler* io = nullptr;       ///< this worker's I/O request scheduler
  ThreadPool* cpu_pool = nullptr;  ///< update-kernel threads (may be null)
  const GradSource* grads = nullptr;
  int worker_id = 0;  ///< node-local id (informational; locking lives in io)
  int rank = 0;       ///< global rank, used for storage keys
  /// Tenant (job) id every IoRequest this engine submits is stamped with.
  /// On an owned, single-job scheduler this stays 0; a JobManager-borrowed
  /// engine carries its job's id so the shared scheduler's fair-share,
  /// cancellation, and fail-stop layers can tell the jobs apart.
  u32 tenant = 0;
};

class Engine {
 public:
  virtual ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create this shard's subgroups (deterministic parameter init, zero
  /// moments) and distribute them per the engine's storage model. Must be
  /// called once before training.
  virtual void initialize() = 0;

  /// Deposit one subgroup's FP16 gradients for micro-step `sample_index`
  /// (globally unique across iterations x accumulation steps).
  virtual void deposit_gradients_async(u64 sample_index, u32 subgroup_id,
                                       bool first_micro_step,
                                       bool final_micro_step) = 0;

  /// Barrier for all outstanding gradient I/O (end of backward phase).
  virtual void wait_gradient_io() = 0;

  /// The update phase: apply one optimizer step to every subgroup,
  /// instrumented. `iteration` feeds the update-order policy.
  virtual IterationReport run_update(u64 iteration) = 0;

  virtual const ShardLayout& layout() const = 0;
  virtual u32 num_subgroups() const = 0;

  /// Read access to subgroup state wherever it currently lives (host or
  /// tier; tier-resident state is read untimed). For tests/inspection.
  virtual Subgroup snapshot_subgroup(u32 id) const = 0;

  /// Order-independent digest of the entire shard's optimizer state. Equal
  /// digests <=> bitwise-equal training state; used to prove placement and
  /// ordering policies do not change results.
  virtual u64 state_checksum() const = 0;

  /// Where the optimizer state currently lives (Fig. 10).
  struct Distribution {
    u64 host_sim_bytes = 0;
    std::vector<u64> path_sim_bytes;  ///< per VirtualTier path
  };
  virtual Distribution distribution() const = 0;

  /// Ids resident in host memory (valid, un-flushed state), LRU first.
  virtual std::vector<u32> host_resident() const = 0;

  /// True when subgroup `id`'s authoritative copy sits on a persistent
  /// VirtualTier path (checkpoint pre-staging consults this).
  virtual bool on_persistent_path(u32 id) const = 0;

  /// Overwrite subgroup `id`'s state from a serialized image (checkpoint
  /// restore). The restored image becomes the authoritative copy.
  virtual void restore_state(u32 id, std::span<const u8> serialized) = 0;

  virtual const SimClock& clock() const = 0;
  virtual int rank() const = 0;

  /// The scheduler this engine's traffic flows through, or nullptr for
  /// engines with no third-level I/O (checkpoint helpers then write the
  /// store directly).
  virtual IoScheduler* io() const = 0;

  /// Tenant id the engine stamps on its IoRequests (EngineContext::tenant).
  /// Checkpoint helpers use this so their store traffic rides the same
  /// fair-share bucket as the engine that owns the state.
  virtual u32 tenant() const { return 0; }

 protected:
  Engine() = default;
};

/// Build the engine implementation selected by `opts.engine`. Each
/// engine's constructor runs the strict option validation relevant to it
/// (the offloading engines check the full EngineOptions contract;
/// cpu_only checks only the fields it consumes — placement/ordering
/// selections do not apply to a host-resident engine).
std::unique_ptr<Engine> make_engine(const EngineContext& ctx,
                                    const EngineOptions& opts,
                                    const ShardLayout& layout);

/// Registered engine kinds ("offload", "cpu_only", "tensor_nvme").
std::vector<std::string> engine_kind_names();

}  // namespace mlpo
