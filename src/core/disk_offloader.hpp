// TensorNVMe-style offloading facade (paper §3.5): "the core principles of
// MLP-Offload make it extensible to other training runtimes, such as
// TensorNVMe in Colossal-AI, by specifying multiple DiskOffloader objects
// to create the virtual third-level tier, on each of which the
// corresponding subgroups dictated by our performance model can be
// offloaded."
//
// This adapter mirrors TensorNVMe's per-tensor async API (async_write /
// async_read / synchronize) over one storage tier, and provides the Eq.-1
// splitter that distributes a tensor set across several DiskOffloaders —
// the exact integration recipe the paper describes.
#pragma once

#include <future>
#include <span>
#include <string>
#include <vector>

#include "policy/perf_model.hpp"
#include "io/io_batch.hpp"
#include "io/io_scheduler.hpp"
#include "tiers/storage_tier.hpp"

namespace mlpo {

class DiskOffloader {
 public:
  /// @param tier the backing storage (one path of the virtual tier)
  /// @param io shared I/O scheduler; traffic rides its external channel
  ///        (reads at demand priority, writes as lazy flushes)
  /// @param tenant id stamped on this offloader's requests (0 when the
  ///        scheduler is single-job)
  DiskOffloader(StorageTier& tier, IoScheduler& io, u32 tenant = 0)
      : tier_(&tier), io_(&io), tenant_(tenant) {}

  /// Asynchronously persist `data` under `key`. The span must stay alive
  /// until synchronize() (TensorNVMe's contract).
  std::future<void> async_write(const std::string& key,
                                std::span<const f32> data, u64 sim_bytes = 0);

  /// Asynchronously load `key` into `data` (sizes must match the write).
  ///
  /// Ordering: reads dispatch at demand priority and deterministically
  /// overtake still-queued writes on the same channel, so reading a key
  /// whose async_write has not completed yet fails (or returns the prior
  /// version). Wait on the write's future or call synchronize() first —
  /// the same contract TensorNVMe imposes.
  std::future<void> async_read(const std::string& key, std::span<f32> data,
                               u64 sim_bytes = 0);

  /// Drain every operation issued through this offloader.
  void synchronize();

  StorageTier& tier() { return *tier_; }

 private:
  StorageTier* tier_;
  IoScheduler* io_;
  u32 tenant_ = 0;
  IoBatch pending_;
};

/// Split `tensor_sim_bytes.size()` tensors across `offloaders` proportional
/// to each backing tier's min(read,write) bandwidth — Eq. 1 applied to the
/// Colossal-AI integration. Returns tensor index -> offloader index, using
/// the same interleaved spread as the subgroup placement.
std::vector<std::size_t> split_tensors_by_bandwidth(
    const std::vector<DiskOffloader*>& offloaders, std::size_t tensor_count);

}  // namespace mlpo
