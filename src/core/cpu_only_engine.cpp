#include "core/cpu_only_engine.hpp"

#include <stdexcept>

namespace mlpo {

namespace {
inline u64 splitmix64(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

CpuOnlyEngine::CpuOnlyEngine(const SimClock& clock, const GradSource& grads,
                             const ShardLayout& layout, const Options& opts,
                             ThreadPool* cpu_pool, RateLimiter* d2h)
    : clock_(&clock), grads_(&grads), layout_(layout), opts_(opts),
      cpu_pool_(cpu_pool), d2h_(d2h) {
  std::vector<u64> accum_elems;
  for (std::size_t i = 0; i < layout_.subgroup_sizes.size(); ++i) {
    subgroups_.push_back(std::make_unique<Subgroup>(
        static_cast<u32>(i), layout_.subgroup_sizes[i], opts_.elem_scale));
    accum_elems.push_back(subgroups_.back()->real_elems());
  }
  accum_ = std::make_unique<GradAccumulator>(accum_elems);
}

void CpuOnlyEngine::initialize() {
  if (initialized_) throw std::logic_error("CpuOnlyEngine: double initialize");
  for (auto& sg : subgroups_) {
    // Same deterministic init scheme as OffloadEngine (rank 0 namespace) so
    // cross-engine state comparisons are meaningful.
    const u64 base = splitmix64(0xC0FFEEull ^ (static_cast<u64>(layout_.rank)
                                               << 40) ^
                                (static_cast<u64>(sg->id()) << 8));
    auto params = sg->params();
    for (std::size_t i = 0; i < params.size(); ++i) {
      const u64 h = splitmix64(base + i);
      const f64 unit = static_cast<f64>(h >> 11) * 0x1.0p-53;
      params[i] = static_cast<f32>((unit - 0.5) * 0.04);
    }
  }
  initialized_ = true;
}

void CpuOnlyEngine::deposit_gradients(u64 sample_index, bool first_micro_step) {
  for (auto& sg : subgroups_) {
    if (d2h_ != nullptr) d2h_->acquire(sg->sim_params() * kFp16Bytes);
    std::vector<u16> grads(sg->real_elems());
    grads_->generate_fp16(layout_.rank, sg->id(), sample_index, grads);
    if (first_micro_step) {
      accum_->store(sg->id(), grads);
    } else {
      accum_->accumulate(sg->id(), grads, cpu_pool_);
    }
  }
}

IterationReport CpuOnlyEngine::run_update(u64 iteration) {
  if (!initialized_) {
    throw std::logic_error("CpuOnlyEngine: run_update before initialize");
  }
  const f64 start = clock_->now();
  IterationReport report;
  report.iteration = iteration;

  std::vector<f32> grads_fp32;
  for (auto& sg_ptr : subgroups_) {
    Subgroup& sg = *sg_ptr;
    SimTimer kernel_timer(*clock_);
    grads_fp32.resize(sg.real_elems());
    accum_->upscale_into(sg.id(), grads_fp32, cpu_pool_);
    clock_->sleep_for(opts_.convert.seconds_for_params(sg.sim_params()));

    sg.set_step(sg.step() + 1);
    adam_update(opts_.adam, sg.params(), sg.momentum(), sg.variance(),
                grads_fp32, sg.step(), cpu_pool_);
    const f64 budget =
        static_cast<f64>(sg.sim_params()) / opts_.cpu_update_rate;
    const f64 real = kernel_timer.elapsed();
    if (budget > real) clock_->sleep_for(budget - real);

    SubgroupTrace trace{};
    trace.subgroup_id = sg.id();
    trace.compute_seconds = std::max(budget, real);
    trace.host_cache_hit = true;  // always host-resident
    report.traces.push_back(trace);
    report.update_compute_seconds += trace.compute_seconds;
    ++report.subgroups_processed;
  }
  report.params_updated = layout_.shard_params;
  report.host_cache_hits = report.subgroups_processed;
  report.update_seconds = clock_->now() - start;
  return report;
}

u64 CpuOnlyEngine::state_checksum() const {
  u64 sum = 0;
  for (const auto& sg : subgroups_) sum += sg->checksum();
  return sum;
}

}  // namespace mlpo
