#include "core/cpu_only_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "io/io_scheduler.hpp"
#include <string>

namespace mlpo {

void CpuOnlyEngine::Options::validate() const {
  if (cpu_update_rate <= 0) {
    throw std::invalid_argument(
        "CpuOnlyEngine: cpu_update_rate=" + std::to_string(cpu_update_rate) +
        " must be > 0 (simulated params per vsecond)");
  }
  if (elem_scale == 0) {
    throw std::invalid_argument(
        "CpuOnlyEngine: elem_scale must be >= 1 (simulated params per real "
        "element)");
  }
}

CpuOnlyEngine::CpuOnlyEngine(const SimClock& clock, const GradSource& grads,
                             const ShardLayout& layout, const Options& opts,
                             ThreadPool* cpu_pool, RateLimiter* d2h,
                             IoScheduler* io, u32 tenant)
    : clock_(&clock), grads_(&grads), layout_(layout), opts_(opts),
      cpu_pool_(cpu_pool), d2h_(d2h), io_(io), tenant_(tenant) {
  opts_.validate();
  std::vector<u64> accum_elems;
  for (std::size_t i = 0; i < layout_.subgroup_sizes.size(); ++i) {
    // Subgroup identity is the layout's global id (== the local index for
    // classic layouts) so state digests compare across elastic re-shards;
    // engine-internal indexing stays local.
    subgroups_.push_back(std::make_unique<Subgroup>(
        layout_.global_id(static_cast<u32>(i)), layout_.subgroup_sizes[i],
        opts_.elem_scale));
    accum_elems.push_back(subgroups_.back()->real_elems());
  }
  accum_ = std::make_unique<GradAccumulator>(accum_elems);
  const u64 max_elems =
      accum_elems.empty()
          ? 0
          : *std::max_element(accum_elems.begin(), accum_elems.end());
  grad_scratch_.reserve(max_elems);
  fp32_scratch_.reserve(max_elems);
}

void CpuOnlyEngine::initialize() {
  if (initialized_) throw std::logic_error("CpuOnlyEngine: double initialize");
  for (auto& sg : subgroups_) {
    // Same deterministic init scheme as every other engine so cross-engine
    // state comparisons are meaningful; elastic layouts key content on the
    // canonical rank + global id so it survives world-size changes.
    Subgroup::deterministic_param_init(layout_.content_rank(), sg->id(),
                                       sg->params());
  }
  initialized_ = true;
}

void CpuOnlyEngine::deposit_gradients_async(u64 sample_index, u32 subgroup_id,
                                            bool first_micro_step,
                                            bool /*final_micro_step*/) {
  Subgroup& sg = *subgroups_.at(subgroup_id);
  // The FP16 gradient stream still crosses PCIe even though the optimizer
  // state never leaves the host — charge it like the offloading engines
  // do, through whichever conduit this engine was wired with.
  if (d2h_ != nullptr) {
    d2h_->acquire(sg.sim_params() * kFp16Bytes);
  } else if (io_ != nullptr) {
    IoRequest req = IoRequest::link_transfer(
        IoTarget::kD2HLink, Subgroup::key(layout_.rank, sg.id()),
        sg.sim_params() * kFp16Bytes, IoPriority::kGradDeposit);
    req.tenant = tenant_;
    io_->submit(std::move(req)).get();
  }
  // Deposits are synchronous on the caller thread, so the reserved-once
  // member scratch is race-free (and allocation-free after the first use).
  grad_scratch_.resize(sg.real_elems());
  grads_->generate_fp16(layout_.content_rank(), sg.id(), sample_index,
                        grad_scratch_);
  if (first_micro_step) {
    accum_->store(subgroup_id, grad_scratch_);
  } else {
    accum_->accumulate(subgroup_id, grad_scratch_, cpu_pool_);
  }
}

void CpuOnlyEngine::deposit_gradients(u64 sample_index,
                                      bool first_micro_step) {
  for (u32 id = 0; id < subgroups_.size(); ++id) {
    deposit_gradients_async(sample_index, id, first_micro_step, true);
  }
}

IterationReport CpuOnlyEngine::run_update(u64 iteration) {
  if (!initialized_) {
    throw std::logic_error("CpuOnlyEngine: run_update before initialize");
  }
  const f64 start = clock_->now();
  IterationReport report;
  report.iteration = iteration;

  std::vector<f32>& grads_fp32 = fp32_scratch_;
  for (u32 id = 0; id < subgroups_.size(); ++id) {
    Subgroup& sg = *subgroups_[id];
    SimTimer kernel_timer(*clock_);
    grads_fp32.resize(sg.real_elems());
    accum_->upscale_into(id, grads_fp32, cpu_pool_);
    clock_->sleep_for(opts_.convert.seconds_for_params(sg.sim_params()));

    sg.set_step(sg.step() + 1);
    adam_update(opts_.adam, sg.params(), sg.momentum(), sg.variance(),
                grads_fp32, sg.step(), cpu_pool_);
    const f64 budget =
        static_cast<f64>(sg.sim_params()) / opts_.cpu_update_rate;
    const f64 real = kernel_timer.elapsed();
    if (budget > real) clock_->sleep_for(budget - real);

    SubgroupTrace trace{};
    trace.subgroup_id = sg.id();
    trace.compute_seconds = std::max(budget, real);
    trace.host_cache_hit = true;  // always host-resident
    report.traces.push_back(trace);
    report.update_compute_seconds += trace.compute_seconds;
    ++report.subgroups_processed;
  }
  report.params_updated = layout_.shard_params;
  report.host_cache_hits = report.subgroups_processed;
  report.update_seconds = clock_->now() - start;
  return report;
}

u64 CpuOnlyEngine::state_checksum() const {
  u64 sum = 0;
  for (const auto& sg : subgroups_) sum += sg->checksum();
  return sum;
}

Engine::Distribution CpuOnlyEngine::distribution() const {
  Distribution dist;
  for (const auto& sg : subgroups_) {
    dist.host_sim_bytes += sg->sim_state_bytes();
  }
  return dist;
}

std::vector<u32> CpuOnlyEngine::host_resident() const {
  std::vector<u32> ids(subgroups_.size());
  for (u32 id = 0; id < subgroups_.size(); ++id) ids[id] = id;
  return ids;
}

void CpuOnlyEngine::restore_state(u32 id, std::span<const u8> serialized) {
  subgroups_.at(id)->deserialize(serialized);
}

}  // namespace mlpo
