#include "core/disk_offloader.hpp"

#include <algorithm>
#include <stdexcept>

namespace mlpo {

std::future<void> DiskOffloader::async_write(const std::string& key,
                                             std::span<const f32> data,
                                             u64 sim_bytes) {
  IoRequest req = IoRequest::external_op(IoOp::kWrite, tier_, key, sim_bytes,
                                         IoPriority::kLazyFlush);
  req.src = std::span<const u8>(reinterpret_cast<const u8*>(data.data()),
                                data.size() * sizeof(f32));
  req.tenant = tenant_;
  // Keep a copy in the drain set; share completion with the caller.
  auto shared = io_->submit(std::move(req)).share();
  pending_.add(std::async(std::launch::deferred, [shared] { shared.get(); }));
  return std::async(std::launch::deferred, [shared] { shared.get(); });
}

std::future<void> DiskOffloader::async_read(const std::string& key,
                                            std::span<f32> data,
                                            u64 sim_bytes) {
  IoRequest req = IoRequest::external_op(IoOp::kRead, tier_, key, sim_bytes,
                                         IoPriority::kDemandPrefetch);
  req.dst = std::span<u8>(reinterpret_cast<u8*>(data.data()),
                          data.size() * sizeof(f32));
  req.tenant = tenant_;
  auto shared = io_->submit(std::move(req)).share();
  pending_.add(std::async(std::launch::deferred, [shared] { shared.get(); }));
  return std::async(std::launch::deferred, [shared] { shared.get(); });
}

void DiskOffloader::synchronize() { pending_.wait_all(); }

std::vector<std::size_t> split_tensors_by_bandwidth(
    const std::vector<DiskOffloader*>& offloaders, std::size_t tensor_count) {
  if (offloaders.empty()) {
    throw std::invalid_argument("split_tensors_by_bandwidth: no offloaders");
  }
  std::vector<f64> bandwidths;
  bandwidths.reserve(offloaders.size());
  for (const auto* off : offloaders) {
    const auto& tier = const_cast<DiskOffloader*>(off)->tier();
    bandwidths.push_back(
        std::min(tier.read_bandwidth(), tier.write_bandwidth()));
  }
  const auto quotas =
      eq1_subgroup_quotas(static_cast<u32>(tensor_count), bandwidths);
  return interleaved_placement(quotas);
}

}  // namespace mlpo
