// Alpha-beta cost models for the collectives ZeRO-3 training issues:
// allgather/scatter of FP16 parameters during fwd/bwd (parameter
// reconstruction), reduce-scatter of gradients, and tensor-parallel
// allreduces. Used by the weak-scaling runtime (paper §4.4) to charge
// communication time on the virtual clock.
//
// Model: ring algorithms on p ranks moving n bytes cost
//   allreduce:      2(p-1)/p * n / B + 2(p-1) * alpha
//   allgather:       (p-1)/p * n / B +  (p-1) * alpha
//   reduce-scatter:  (p-1)/p * n / B +  (p-1) * alpha
//   broadcast:               n / B   + log2(p) * alpha   (tree)
// with link bandwidth B (bytes/s) and per-message latency alpha.
#pragma once

#include <string>

#include "util/common.hpp"

namespace mlpo {

/// One interconnect domain (NVLink island, node-level IB/Slingshot fabric).
struct Interconnect {
  std::string name;
  f64 bandwidth;      ///< bytes per (virtual) second per rank pair direction
  f64 latency = 5e-6; ///< alpha, seconds per message

  /// NVLink-class intra-node fabric (A100 NVSwitch ~ 300 GB/s usable).
  static Interconnect nvlink() { return {"nvlink", 300.0 * GB, 2e-6}; }
  /// Slingshot/IB-class inter-node fabric (~25 GB/s per NIC).
  static Interconnect slingshot() { return {"slingshot", 25.0 * GB, 5e-6}; }
};

/// Cost (virtual seconds) of each collective over `bytes` on `ranks` ranks.
/// All return 0 for ranks <= 1 (no communication needed).
f64 allreduce_seconds(const Interconnect& net, u32 ranks, u64 bytes);
f64 allgather_seconds(const Interconnect& net, u32 ranks, u64 bytes);
f64 reduce_scatter_seconds(const Interconnect& net, u32 ranks, u64 bytes);
f64 broadcast_seconds(const Interconnect& net, u32 ranks, u64 bytes);

/// ZeRO-3 per-iteration communication volume model (paper §2: ZeRO-3 incurs
/// ~1.5x the communication of plain data parallelism). For a model with
/// `params` parameters in FP16:
///   fwd: allgather of params; bwd: allgather of params + reduce-scatter of
///   grads. Returns the per-phase costs so the runtime can attribute them.
struct Zero3CommCost {
  f64 forward_seconds;
  f64 backward_seconds;
};
Zero3CommCost zero3_comm_cost(const Interconnect& net, u32 dp_ranks,
                              u64 fp16_param_bytes);

/// Tensor-parallel activation allreduce cost per layer pair (Megatron-style:
/// two allreduces per layer in fwd, two in bwd) over hidden activations of
/// `activation_bytes`.
f64 tensor_parallel_seconds(const Interconnect& net, u32 tp_ranks,
                            u32 num_layers, u64 activation_bytes);

}  // namespace mlpo
