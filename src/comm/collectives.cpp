#include "comm/collectives.hpp"

#include <cmath>

namespace mlpo {

namespace {
inline f64 ring_fraction(u32 ranks) {
  return static_cast<f64>(ranks - 1) / static_cast<f64>(ranks);
}
}  // namespace

f64 allreduce_seconds(const Interconnect& net, u32 ranks, u64 bytes) {
  if (ranks <= 1 || bytes == 0) return 0.0;
  return 2.0 * ring_fraction(ranks) * static_cast<f64>(bytes) / net.bandwidth +
         2.0 * static_cast<f64>(ranks - 1) * net.latency;
}

f64 allgather_seconds(const Interconnect& net, u32 ranks, u64 bytes) {
  if (ranks <= 1 || bytes == 0) return 0.0;
  return ring_fraction(ranks) * static_cast<f64>(bytes) / net.bandwidth +
         static_cast<f64>(ranks - 1) * net.latency;
}

f64 reduce_scatter_seconds(const Interconnect& net, u32 ranks, u64 bytes) {
  return allgather_seconds(net, ranks, bytes);  // symmetric ring cost
}

f64 broadcast_seconds(const Interconnect& net, u32 ranks, u64 bytes) {
  if (ranks <= 1 || bytes == 0) return 0.0;
  return static_cast<f64>(bytes) / net.bandwidth +
         std::log2(static_cast<f64>(ranks)) * net.latency;
}

Zero3CommCost zero3_comm_cost(const Interconnect& net, u32 dp_ranks,
                              u64 fp16_param_bytes) {
  // Forward: one allgather to reconstruct each layer's FP16 parameters.
  // Backward: parameters are gathered again (they were released after the
  // forward) and gradients are reduce-scattered back to their owner ranks.
  Zero3CommCost cost{};
  cost.forward_seconds = allgather_seconds(net, dp_ranks, fp16_param_bytes);
  cost.backward_seconds = allgather_seconds(net, dp_ranks, fp16_param_bytes) +
                          reduce_scatter_seconds(net, dp_ranks, fp16_param_bytes);
  return cost;
}

f64 tensor_parallel_seconds(const Interconnect& net, u32 tp_ranks,
                            u32 num_layers, u64 activation_bytes) {
  if (tp_ranks <= 1) return 0.0;
  // Megatron TP: 2 allreduces per layer forward + 2 backward = 4 per layer.
  return 4.0 * static_cast<f64>(num_layers) *
         allreduce_seconds(net, tp_ranks, activation_bytes);
}

}  // namespace mlpo
