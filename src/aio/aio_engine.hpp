// DEPRECATED flat-FIFO asynchronous I/O engine.
//
// This was the original I/O substrate: a bounded submission queue
// (io_setup-style queue depth), a fixed set of worker threads draining it
// in arrival order, completion through std::future. It survives only as a
// compatibility shim for generic task offloading — all tier, link, and
// checkpoint traffic now flows through the priority-aware IoScheduler in
// src/io/, which supersedes this engine (per-channel queues, priority
// classes, coalescing, cancellation, backpressure per path instead of one
// flat pool). Do not wire new producers to AioEngine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "io/io_batch.hpp"
#include "io/io_request.hpp"
#include "tiers/storage_tier.hpp"
#include "util/mpmc_queue.hpp"

namespace mlpo {

/// One completed-transfer record, for tracing (Fig. 5 style plots).
struct IoCompletion {
  IoOp op;
  std::string key;
  u64 sim_bytes;
  f64 enqueue_vtime;  ///< virtual time at submission (0 when no clock wired)
};

class AioEngine {
 public:
  /// @param io_threads parallel in-flight operations (libaio: events in
  ///        flight); @param queue_depth max queued submissions before
  ///        submit blocks (backpressure).
  explicit AioEngine(std::size_t io_threads = 2, std::size_t queue_depth = 64);
  ~AioEngine();

  AioEngine(const AioEngine&) = delete;
  AioEngine& operator=(const AioEngine&) = delete;

  /// Async read of `key` from `tier` into `out`. The buffer must stay alive
  /// until the future resolves.
  std::future<void> submit_read(StorageTier& tier, std::string key,
                                std::span<u8> out, u64 sim_bytes = 0);

  /// Async write of `data` to `tier` under `key`. The data must stay alive
  /// until the future resolves.
  std::future<void> submit_write(StorageTier& tier, std::string key,
                                 std::span<const u8> data, u64 sim_bytes = 0);

  /// Run an arbitrary task on the I/O threads (e.g. a VirtualTier routed
  /// read, or a transfer guarded by a TierLock).
  std::future<void> submit(std::function<void()> task);

  /// Block until every submitted operation has completed.
  void drain();

  std::size_t io_threads() const { return threads_.size(); }
  u64 submitted() const { return submitted_.load(); }
  u64 completed() const { return completed_.load(); }

 private:
  struct Task {
    std::function<void()> fn;
    std::promise<void> done;
  };

  void io_loop();

  MpmcQueue<std::unique_ptr<Task>> queue_;
  std::vector<std::thread> threads_;
  std::atomic<u64> submitted_{0};
  std::atomic<u64> completed_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
};

}  // namespace mlpo
