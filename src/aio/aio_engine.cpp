#include "aio/aio_engine.hpp"

#include <exception>

namespace mlpo {

AioEngine::AioEngine(std::size_t io_threads, std::size_t queue_depth)
    : queue_(queue_depth) {
  if (io_threads == 0) io_threads = 1;
  threads_.reserve(io_threads);
  for (std::size_t i = 0; i < io_threads; ++i) {
    threads_.emplace_back([this] { io_loop(); });
  }
}

AioEngine::~AioEngine() {
  queue_.close();
  for (auto& t : threads_) t.join();
}

void AioEngine::io_loop() {
  for (;;) {
    auto task = queue_.pop();
    if (!task.has_value()) return;
    auto& t = **task;
    try {
      t.fn();
      t.done.set_value();
    } catch (...) {
      t.done.set_exception(std::current_exception());
    }
    // Bump under the drain mutex so a concurrent drain() cannot miss the
    // wakeup between its predicate check and its wait.
    {
      std::lock_guard lk(drain_mutex_);
      completed_.fetch_add(1, std::memory_order_release);
    }
    drain_cv_.notify_all();
  }
}

std::future<void> AioEngine::submit(std::function<void()> fn) {
  auto task = std::make_unique<Task>();
  task->fn = std::move(fn);
  auto fut = task->done.get_future();
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  if (!queue_.push(std::move(task))) {
    // Engine is shutting down; surface as a broken operation instead of
    // silently dropping the promise.
    std::promise<void> p;
    p.set_exception(std::make_exception_ptr(
        std::runtime_error("AioEngine: submit after shutdown")));
    {
      std::lock_guard lk(drain_mutex_);
      completed_.fetch_add(1, std::memory_order_release);
    }
    drain_cv_.notify_all();
    return p.get_future();
  }
  return fut;
}

std::future<void> AioEngine::submit_read(StorageTier& tier, std::string key,
                                         std::span<u8> out, u64 sim_bytes) {
  return submit([&tier, key = std::move(key), out, sim_bytes] {
    tier.read(key, out, sim_bytes);
  });
}

std::future<void> AioEngine::submit_write(StorageTier& tier, std::string key,
                                          std::span<const u8> data,
                                          u64 sim_bytes) {
  return submit([&tier, key = std::move(key), data, sim_bytes] {
    tier.write(key, data, sim_bytes);
  });
}

void AioEngine::drain() {
  std::unique_lock lock(drain_mutex_);
  drain_cv_.wait(lock, [this] {
    return completed_.load(std::memory_order_acquire) >=
           submitted_.load(std::memory_order_acquire);
  });
}

}  // namespace mlpo
