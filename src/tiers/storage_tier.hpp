// Storage tier abstraction.
//
// A tier is a key/value blob store with measurable bandwidth — the shape of
// every offload target in the paper: node-local NVMe, a parallel file
// system path, an object store bucket. Blocking read/write is the base
// interface; asynchrony is layered on top by the IoScheduler (src/io/).
//
// Scale-reduced emulation: every transfer carries an optional `sim_bytes`
// count. Backends move the real `data` bytes; timing wrappers
// (ThrottledTier) charge virtual time for `sim_bytes`. When sim_bytes is 0
// the real size is used, which is the non-emulated (production) behaviour.
#pragma once

#include <atomic>
#include <cassert>
#include <exception>
#include <functional>
#include <span>
#include <string>

#include "util/common.hpp"

namespace mlpo {

/// Monotonic transfer counters for one tier. All counters use simulated
/// byte counts so telemetry reports paper-scale numbers.
struct TierStats {
  std::atomic<u64> reads{0};
  std::atomic<u64> writes{0};
  std::atomic<u64> bytes_read{0};
  std::atomic<u64> bytes_written{0};
  /// Accumulated per-request wall time in virtual seconds (x1e6 fixed point
  /// to keep the counter atomic).
  std::atomic<u64> read_usecs{0};
  std::atomic<u64> write_usecs{0};

  f64 read_seconds() const { return static_cast<f64>(read_usecs.load()) / 1e6; }
  f64 write_seconds() const { return static_cast<f64>(write_usecs.load()) / 1e6; }

  /// RAII marker for one in-flight transfer. Tier implementations open one
  /// scope around each read()/write() counter update so the
  /// no-concurrent-transfers contract of reset() is machine-checked (in
  /// debug builds) instead of living in a comment.
  class TransferScope {
   public:
    explicit TransferScope(TierStats& stats) : stats_(&stats) {
      stats_->in_flight_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~TransferScope() { stats_->in_flight_.fetch_sub(1, std::memory_order_acq_rel); }
    TransferScope(const TransferScope&) = delete;
    TransferScope& operator=(const TransferScope&) = delete;

   private:
    TierStats* stats_;
  };

  /// Transfers currently inside a TransferScope (diagnostics / tests).
  u32 in_flight() const { return in_flight_.load(std::memory_order_acquire); }

  /// Zero every counter with individual atomic stores. NOT atomic as a
  /// whole: a transfer racing with reset() may land partly before and
  /// partly after it, leaving the counters mutually inconsistent (e.g.
  /// reads counted whose bytes were wiped). Only call between iterations /
  /// phases, when no transfer is in flight on this tier — debug builds
  /// assert that via the TransferScope counter.
  void reset() {
    assert(in_flight_.load(std::memory_order_acquire) == 0 &&
           "TierStats::reset() while a transfer is in flight violates the "
           "no-concurrent-transfers contract");
    reads.store(0);
    writes.store(0);
    bytes_read.store(0);
    bytes_written.store(0);
    read_usecs.store(0);
    write_usecs.store(0);
  }

 private:
  std::atomic<u32> in_flight_{0};
};

class StorageTier {
 public:
  virtual ~StorageTier() = default;

  virtual const std::string& name() const = 0;

  /// Store `data` under `key`, replacing any previous object.
  /// @param sim_bytes simulated transfer size; 0 means data.size().
  virtual void write(const std::string& key, std::span<const u8> data,
                     u64 sim_bytes = 0) = 0;

  /// Read the object at `key` into `out` (must be exactly the stored size).
  /// Throws std::out_of_range for unknown keys.
  virtual void read(const std::string& key, std::span<u8> out,
                    u64 sim_bytes = 0) = 0;

  virtual bool exists(const std::string& key) const = 0;
  virtual u64 object_size(const std::string& key) const = 0;
  virtual void erase(const std::string& key) = 0;

  /// Untimed inspection read for debugging/verification tooling: fetches
  /// the object without charging emulated transfer time or stats. Default
  /// forwards to read(); throttled wrappers bypass their channels.
  virtual void peek(const std::string& key, std::span<u8> out) {
    read(key, out, 0);
  }

  /// Nominal bandwidths in bytes per virtual second; the performance model
  /// seeds its estimates from these (paper §3.3 "initially, B_i ... is
  /// measured using microbenchmarks").
  virtual f64 read_bandwidth() const = 0;
  virtual f64 write_bandwidth() const = 0;

  /// Survives job termination (PFS / object store, not tmpfs or host RAM).
  /// Checkpoint pre-staging only counts persistent-tier bytes as durable.
  virtual bool persistent() const { return false; }

  /// --- Asynchronous extension ------------------------------------------
  /// Completion callback for async transfers: invoked exactly once, with
  /// nullptr on success or the failure as an exception_ptr. May run on an
  /// internal backend thread — callers must not block in it.
  using AsyncDone = std::function<void(std::exception_ptr)>;

  /// True when {read,write}_async complete on real device events instead
  /// of inline. The IoScheduler uses this to drive request settlement from
  /// genuine completions rather than simulated service times.
  virtual bool supports_async() const { return false; }

  /// Asynchronous write. `data` must stay alive until `done` fires.
  /// Default shim: synchronous write + inline completion, so every tier is
  /// async-callable.
  virtual void write_async(const std::string& key, std::span<const u8> data,
                           u64 sim_bytes, AsyncDone done) {
    try {
      write(key, data, sim_bytes);
      done(nullptr);
    } catch (...) {
      done(std::current_exception());
    }
  }

  /// Asynchronous read; same contract as write_async.
  virtual void read_async(const std::string& key, std::span<u8> out,
                          u64 sim_bytes, AsyncDone done) {
    try {
      read(key, out, sim_bytes);
      done(nullptr);
    } catch (...) {
      done(std::current_exception());
    }
  }

  TierStats& stats() { return stats_; }
  const TierStats& stats() const { return stats_; }

 protected:
  TierStats stats_;
};

}  // namespace mlpo
