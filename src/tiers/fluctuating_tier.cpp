#include "tiers/fluctuating_tier.hpp"

#include <stdexcept>

namespace mlpo {

f64 BandwidthSchedule::factor_at(f64 vtime) const {
  f64 factor = 1.0;
  for (const auto& seg : segments) {
    if (seg.start_vtime > vtime) break;
    factor = seg.factor;
  }
  return factor;
}

BandwidthSchedule BandwidthSchedule::square_wave(f64 period_vsecs, f64 high,
                                                 f64 low, u32 cycles) {
  if (period_vsecs <= 0 || high <= 0 || low <= 0) {
    throw std::invalid_argument("square_wave: non-positive parameter");
  }
  BandwidthSchedule schedule;
  for (u32 c = 0; c < cycles; ++c) {
    schedule.segments.push_back({2 * c * period_vsecs, high});
    schedule.segments.push_back({(2 * c + 1) * period_vsecs, low});
  }
  return schedule;
}

FluctuatingTier::FluctuatingTier(std::string name,
                                 std::shared_ptr<StorageTier> backend,
                                 const SimClock& clock,
                                 const ThrottleSpec& nominal,
                                 BandwidthSchedule schedule, bool persistent)
    : name_(std::move(name)), clock_(&clock), nominal_(nominal),
      schedule_(std::move(schedule)),
      inner_(name_ + "/inner", std::move(backend), clock, nominal,
             persistent) {}

void FluctuatingTier::apply_schedule() {
  const f64 factor = schedule_.factor_at(clock_->now());
  MutexLock lock(mutex_);
  if (factor != applied_factor_) {
    inner_.set_read_bandwidth(nominal_.read_bw * factor);
    inner_.set_write_bandwidth(nominal_.write_bw * factor);
    applied_factor_ = factor;
  }
}

f64 FluctuatingTier::current_factor() const {
  MutexLock lock(mutex_);
  return applied_factor_;
}

void FluctuatingTier::write(const std::string& key, std::span<const u8> data,
                            u64 sim_bytes) {
  TierStats::TransferScope transfer(stats_);
  apply_schedule();
  inner_.write(key, data, sim_bytes);
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(sim_bytes ? sim_bytes : data.size(),
                                 std::memory_order_relaxed);
}

void FluctuatingTier::read(const std::string& key, std::span<u8> out,
                           u64 sim_bytes) {
  TierStats::TransferScope transfer(stats_);
  apply_schedule();
  inner_.read(key, out, sim_bytes);
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(sim_bytes ? sim_bytes : out.size(),
                              std::memory_order_relaxed);
}

bool FluctuatingTier::exists(const std::string& key) const {
  return inner_.exists(key);
}

u64 FluctuatingTier::object_size(const std::string& key) const {
  return inner_.object_size(key);
}

void FluctuatingTier::erase(const std::string& key) { inner_.erase(key); }

void FluctuatingTier::peek(const std::string& key, std::span<u8> out) {
  inner_.peek(key, out);
}

}  // namespace mlpo
