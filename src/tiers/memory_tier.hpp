// In-memory blob store. Backing for emulated NVMe/PFS tiers (wrapped in
// ThrottledTier) and usable directly as a "host memory" staging target.
#pragma once

#include <unordered_map>
#include <vector>

#include "tiers/storage_tier.hpp"
#include "util/mutex.hpp"

namespace mlpo {

class MemoryTier : public StorageTier {
 public:
  /// @param read_bw / write_bw nominal bandwidths reported to the
  ///        performance model. Memory itself is not throttled.
  explicit MemoryTier(std::string name, f64 read_bw = 1e12, f64 write_bw = 1e12);

  const std::string& name() const override { return name_; }
  void write(const std::string& key, std::span<const u8> data,
             u64 sim_bytes = 0) override;
  void read(const std::string& key, std::span<u8> out,
            u64 sim_bytes = 0) override;
  bool exists(const std::string& key) const override;
  u64 object_size(const std::string& key) const override;
  void erase(const std::string& key) override;
  f64 read_bandwidth() const override { return read_bw_; }
  f64 write_bandwidth() const override { return write_bw_; }

  std::size_t object_count() const;
  /// Sum of stored (real) bytes.
  u64 stored_bytes() const;

 private:
  std::string name_;
  f64 read_bw_;
  f64 write_bw_;
  mutable SharedMutex mutex_;
  std::unordered_map<std::string, std::vector<u8>> objects_ MLPO_GUARDED_BY(mutex_);
};

}  // namespace mlpo
