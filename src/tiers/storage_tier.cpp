#include "tiers/storage_tier.hpp"

// Interface-only translation unit: keeps the vtable anchored in one object
// file and gives the target a .cpp so static analysis tools see the header.

namespace mlpo {}  // namespace mlpo
