#include "tiers/virtual_tier.hpp"

#include <algorithm>
#include <stdexcept>

namespace mlpo {

std::size_t VirtualTier::add_path(std::shared_ptr<StorageTier> tier,
                                  std::shared_ptr<TierLock> read_lock,
                                  std::shared_ptr<TierLock> write_lock) {
  if (!read_lock) read_lock = std::make_shared<TierLock>();
  if (!write_lock) write_lock = std::make_shared<TierLock>();
  paths_.push_back(
      Path{std::move(tier), std::move(read_lock), std::move(write_lock)});
  return paths_.size() - 1;
}

std::vector<f64> VirtualTier::path_bandwidths() const {
  std::vector<f64> bws;
  bws.reserve(paths_.size());
  for (const auto& p : paths_) {
    bws.push_back(std::min(p.tier->read_bandwidth(), p.tier->write_bandwidth()));
  }
  return bws;
}

void VirtualTier::write_to(std::size_t path_idx, const std::string& key,
                           std::span<const u8> data, u64 sim_bytes) {
  if (path_idx >= paths_.size()) {
    throw std::out_of_range("VirtualTier: bad path index");
  }
  // Determine whether the key moves between paths; stale copies are erased
  // after the new write lands so a concurrent reader never finds nothing.
  std::size_t previous = npos;
  {
    ReaderMutexLock lock(mutex_);
    const auto it = locations_.find(key);
    if (it != locations_.end()) previous = it->second.path;
  }

  paths_[path_idx].tier->write(key, data, sim_bytes);

  {
    WriterMutexLock lock(mutex_);
    locations_[key] = Location{path_idx, sim_bytes ? sim_bytes : data.size()};
  }
  if (previous != npos && previous != path_idx) {
    paths_[previous].tier->erase(key);
  }
}

void VirtualTier::read(const std::string& key, std::span<u8> out,
                       u64 sim_bytes) {
  const std::size_t idx = locate(key);
  if (idx == npos) {
    throw std::out_of_range("VirtualTier: no object " + key);
  }
  paths_[idx].tier->read(key, out, sim_bytes);
}

void VirtualTier::write_to_async(std::size_t path_idx, const std::string& key,
                                 std::span<const u8> data, u64 sim_bytes,
                                 StorageTier::AsyncDone done) {
  if (path_idx >= paths_.size()) {
    done(std::make_exception_ptr(
        std::out_of_range("VirtualTier: bad path index")));
    return;
  }
  std::size_t previous = npos;
  {
    ReaderMutexLock lock(mutex_);
    const auto it = locations_.find(key);
    if (it != locations_.end()) previous = it->second.path;
  }
  const u64 recorded = sim_bytes != 0 ? sim_bytes : data.size();
  paths_[path_idx].tier->write_async(
      key, data, sim_bytes,
      [this, path_idx, key, recorded, previous,
       done = std::move(done)](std::exception_ptr error) {
        if (!error) {
          {
            WriterMutexLock lock(mutex_);
            locations_[key] = Location{path_idx, recorded};
          }
          if (previous != npos && previous != path_idx) {
            paths_[previous].tier->erase(key);
          }
        }
        done(std::move(error));
      });
}

void VirtualTier::read_async(const std::string& key, std::span<u8> out,
                             u64 sim_bytes, StorageTier::AsyncDone done) {
  const std::size_t idx = locate(key);
  if (idx == npos) {
    done(std::make_exception_ptr(
        std::out_of_range("VirtualTier: no object " + key)));
    return;
  }
  paths_[idx].tier->read_async(key, out, sim_bytes, std::move(done));
}

void VirtualTier::peek(const std::string& key, std::span<u8> out) const {
  const std::size_t idx = locate(key);
  if (idx == npos) {
    throw std::out_of_range("VirtualTier: no object " + key);
  }
  // peek is morally const: it mutates no observable tier state.
  const_cast<StorageTier&>(*paths_[idx].tier).peek(key, out);
}

std::size_t VirtualTier::locate(const std::string& key) const {
  ReaderMutexLock lock(mutex_);
  const auto it = locations_.find(key);
  return it == locations_.end() ? npos : it->second.path;
}

void VirtualTier::erase(const std::string& key) {
  std::size_t idx = npos;
  {
    WriterMutexLock lock(mutex_);
    const auto it = locations_.find(key);
    if (it == locations_.end()) return;
    idx = it->second.path;
    locations_.erase(it);
  }
  paths_[idx].tier->erase(key);
}

std::vector<u64> VirtualTier::resident_sim_bytes() const {
  ReaderMutexLock lock(mutex_);
  std::vector<u64> per_path(paths_.size(), 0);
  for (const auto& [key, loc] : locations_) {
    per_path[loc.path] += loc.sim_bytes;
  }
  return per_path;
}

}  // namespace mlpo
