#include "tiers/failstop_tier.hpp"

#include <stdexcept>

namespace mlpo {

FailStopTier::FailStopTier(std::string name,
                           std::shared_ptr<StorageTier> backend,
                           const SimClock& clock)
    : name_(std::move(name)), backend_(std::move(backend)), clock_(&clock) {
  if (backend_ == nullptr) {
    throw std::invalid_argument("FailStopTier: backend is required");
  }
}

void FailStopTier::revive() {
  arm_at_.store(-1.0, std::memory_order_release);
  dead_.store(false, std::memory_order_release);
}

bool FailStopTier::dead() const {
  if (dead_.load(std::memory_order_acquire)) return true;
  const f64 arm_at = arm_at_.load(std::memory_order_acquire);
  if (arm_at >= 0 && clock_->now() >= arm_at) {
    dead_.store(true, std::memory_order_release);  // latch
    return true;
  }
  return false;
}

void FailStopTier::check_alive() const {
  if (dead()) {
    throw FailStopError("FailStopTier: tier '" + name_ + "' has fail-stopped");
  }
}

void FailStopTier::write(const std::string& key, std::span<const u8> data,
                         u64 sim_bytes) {
  check_alive();
  backend_->write(key, data, sim_bytes);
}

void FailStopTier::read(const std::string& key, std::span<u8> out,
                        u64 sim_bytes) {
  check_alive();
  backend_->read(key, out, sim_bytes);
}

bool FailStopTier::exists(const std::string& key) const {
  check_alive();
  return backend_->exists(key);
}

u64 FailStopTier::object_size(const std::string& key) const {
  check_alive();
  return backend_->object_size(key);
}

void FailStopTier::erase(const std::string& key) {
  check_alive();
  backend_->erase(key);
}

void FailStopTier::peek(const std::string& key, std::span<u8> out) {
  check_alive();
  backend_->peek(key, out);
}

}  // namespace mlpo
