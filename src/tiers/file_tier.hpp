// POSIX-file-backed tier: one file per object under a root directory.
//
// This is the production (non-emulated) path: pointed at a real NVMe mount
// or PFS directory with time_scale == 1 it performs genuine storage I/O.
// In this repository's tests it runs against a temp directory and validates
// that the engine logic is backend-agnostic.
#pragma once

#include <filesystem>
#include <mutex>

#include "tiers/storage_tier.hpp"

namespace mlpo {

class FileTier : public StorageTier {
 public:
  /// Creates `root` if missing. Object keys are escaped into file names
  /// with the injective util/key_escape scheme, so distinct keys always
  /// map to distinct files.
  FileTier(std::string name, std::filesystem::path root, f64 read_bw = 1e9,
           f64 write_bw = 1e9);

  const std::string& name() const override { return name_; }
  void write(const std::string& key, std::span<const u8> data,
             u64 sim_bytes = 0) override;
  void read(const std::string& key, std::span<u8> out,
            u64 sim_bytes = 0) override;
  bool exists(const std::string& key) const override;
  u64 object_size(const std::string& key) const override;
  void erase(const std::string& key) override;
  f64 read_bandwidth() const override { return read_bw_; }
  f64 write_bandwidth() const override { return write_bw_; }
  bool persistent() const override { return true; }

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path path_for(const std::string& key) const;

  std::string name_;
  std::filesystem::path root_;
  f64 read_bw_;
  f64 write_bw_;
};

}  // namespace mlpo
