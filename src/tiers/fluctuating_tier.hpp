// Storage tier with time-varying bandwidth — the shared-PFS scenario the
// paper's §3.3 adaptivity targets and its conclusion flags for deeper
// study: "a parallel file system may be under I/O pressure from different
// batch jobs ... in which case an updated B_i can repartition the
// subgroups".
//
// Wraps any tier and rescales its *observed* service rate according to a
// schedule of (virtual-time, bandwidth-factor) segments: factor 1.0 is the
// nominal rate, 0.25 means an external job is consuming three quarters of
// the device. The adaptive performance model has no knowledge of the
// schedule — it must discover shifts from observed transfer times.
#pragma once

#include <memory>
#include <vector>

#include "tiers/storage_tier.hpp"
#include "tiers/throttled_tier.hpp"
#include "util/mutex.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {

/// Piecewise-constant bandwidth schedule over virtual time.
struct BandwidthSchedule {
  struct Segment {
    f64 start_vtime;  ///< virtual seconds since tier creation
    f64 factor;       ///< multiplier on nominal bandwidth (> 0)
  };
  std::vector<Segment> segments;  ///< sorted by start_vtime; first at 0

  /// Factor in effect at `vtime` (the last segment whose start has passed;
  /// 1.0 when the schedule is empty).
  f64 factor_at(f64 vtime) const;

  /// Convenience: alternate between `high` and `low` factors every
  /// `period_vsecs`, starting high.
  static BandwidthSchedule square_wave(f64 period_vsecs, f64 high, f64 low,
                                       u32 cycles);
};

/// A ThrottledTier whose channel rates follow a BandwidthSchedule. The
/// schedule is applied lazily before each transfer, so no background thread
/// is needed.
class FluctuatingTier : public StorageTier {
 public:
  FluctuatingTier(std::string name, std::shared_ptr<StorageTier> backend,
                  const SimClock& clock, const ThrottleSpec& nominal,
                  BandwidthSchedule schedule, bool persistent = false);

  const std::string& name() const override { return name_; }
  void write(const std::string& key, std::span<const u8> data,
             u64 sim_bytes = 0) override;
  void read(const std::string& key, std::span<u8> out,
            u64 sim_bytes = 0) override;
  bool exists(const std::string& key) const override;
  u64 object_size(const std::string& key) const override;
  void erase(const std::string& key) override;
  void peek(const std::string& key, std::span<u8> out) override;
  /// Nominal (unscaled) bandwidths: what a microbenchmark at quiet time
  /// would have seeded the performance model with.
  f64 read_bandwidth() const override { return nominal_.read_bw; }
  f64 write_bandwidth() const override { return nominal_.write_bw; }
  bool persistent() const override { return inner_.persistent(); }

  /// Factor currently in effect (for tests/telemetry).
  f64 current_factor() const;

 private:
  void apply_schedule();

  std::string name_;
  const SimClock* clock_;
  ThrottleSpec nominal_;
  BandwidthSchedule schedule_;
  ThrottledTier inner_;
  mutable Mutex mutex_;
  f64 applied_factor_ MLPO_GUARDED_BY(mutex_) = 1.0;
};

}  // namespace mlpo
