// Node-level concurrency control for alternative storage (paper §3.2,
// "optimized virtual tier concurrency control for multi-path I/O").
//
// Semantics: *process-exclusive, thread-shared*. On a node with several
// worker processes (one per GPU), only one worker may drive I/O to a given
// alternative storage at a time — it then owns the tier's full bandwidth —
// but that worker may use as many I/O threads as it likes (a PFS prefers
// multi-threaded access). Other workers either block or skip to a different
// tier / compute instead, which produces the natural interleaving the paper
// describes.
//
// This mirrors the paper's "process-exclusive multi-thread-shared locking
// mechanism in libaio" (§3.5) at library level: ownership is keyed by an
// integer worker id rather than by thread identity.
#pragma once

#include <optional>

#include "util/common.hpp"
#include "util/mutex.hpp"

namespace mlpo {

class TierLock {
 public:
  /// RAII ownership share. Destruction releases one share; when the last
  /// share drops, the tier becomes available to other workers.
  class Guard {
   public:
    Guard() = default;
    Guard(TierLock* lock, int worker) : lock_(lock), worker_(worker) {}
    ~Guard() { release(); }
    Guard(Guard&& o) noexcept : lock_(o.lock_), worker_(o.worker_) {
      o.lock_ = nullptr;
    }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        release();
        lock_ = o.lock_;
        worker_ = o.worker_;
        o.lock_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    bool valid() const { return lock_ != nullptr; }
    int worker() const { return worker_; }
    void release();

   private:
    TierLock* lock_ = nullptr;
    int worker_ = -1;
  };

  /// Block until `worker` owns the tier, then take one share. Re-entrant
  /// for the owning worker: additional threads of the same worker acquire
  /// immediately (thread-shared).
  Guard lock(int worker);

  /// Non-blocking attempt; empty optional if another worker owns the tier.
  /// This is what lets the engine fall through to a different I/O path or
  /// keep computing instead of stalling.
  std::optional<Guard> try_lock(int worker);

  /// Worker currently holding the tier, or -1 when free.
  int owner() const;

 private:
  friend class Guard;

  /// Drop one share on behalf of `worker` (Guard::release's path). NOT the
  /// C++ lock contract — ownership is keyed by worker id, not by thread or
  /// scope, so the capability analysis cannot model TierLock itself as a
  /// lockable; what it checks instead is that owner_/shares_ are only ever
  /// touched under mutex_.
  void unlock(int worker);

  mutable Mutex mutex_;
  CondVar cv_;
  int owner_ MLPO_GUARDED_BY(mutex_) = -1;
  u32 shares_ MLPO_GUARDED_BY(mutex_) = 0;
};

}  // namespace mlpo
