// Fail-stop wrapper tier — the storage face of an injected node or device
// loss.
//
// Wraps any StorageTier and forwards every operation until the tier is
// killed, either explicitly (kill()) or by a deterministic SimClock
// deadline (arm()): once the virtual clock passes the armed time the next
// operation latches the tier dead and every subsequent access throws
// FailStopError. The latch makes virtual-time schedules reproducible — a
// device does not flicker back to life because a later request raced the
// clock. The FailureInjector arms/kills these wrappers; ClusterSim
// classifies FailStopError escaping a node as a NodeFailure so the
// RecoveryDriver can distinguish injected fail-stops from genuine bugs.
#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>

#include "tiers/storage_tier.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {

/// Thrown by every operation on a fail-stopped tier.
class FailStopError : public std::runtime_error {
 public:
  explicit FailStopError(const std::string& what) : std::runtime_error(what) {}
};

class FailStopTier final : public StorageTier {
 public:
  FailStopTier(std::string name, std::shared_ptr<StorageTier> backend,
               const SimClock& clock);

  /// Fail-stop the tier immediately (the injector's iteration-driven kill).
  void kill() { dead_.store(true, std::memory_order_release); }

  /// Deterministic SimClock-driven fail-stop: the first operation at or
  /// after `kill_at_vtime` latches the tier dead. Arming twice keeps the
  /// EARLIEST pending deadline — overlapping schedules (a path event and a
  /// whole-node event on the same hardware) must not postpone each other.
  void arm(f64 kill_at_vtime) {
    f64 current = arm_at_.load(std::memory_order_acquire);
    while ((current < 0 || kill_at_vtime < current) &&
           !arm_at_.compare_exchange_weak(current, kill_at_vtime,
                                          std::memory_order_acq_rel)) {
    }
  }

  /// Bring replacement hardware online (tests; replacement nodes normally
  /// get fresh wrappers).
  void revive();

  /// True once the tier has fail-stopped (latches armed deadlines).
  bool dead() const;

  StorageTier& backend() { return *backend_; }

  const std::string& name() const override { return name_; }
  void write(const std::string& key, std::span<const u8> data,
             u64 sim_bytes) override;
  void read(const std::string& key, std::span<u8> out,
            u64 sim_bytes) override;
  bool exists(const std::string& key) const override;
  u64 object_size(const std::string& key) const override;
  void erase(const std::string& key) override;
  void peek(const std::string& key, std::span<u8> out) override;
  f64 read_bandwidth() const override { return backend_->read_bandwidth(); }
  f64 write_bandwidth() const override { return backend_->write_bandwidth(); }
  bool persistent() const override { return backend_->persistent(); }

 private:
  void check_alive() const;

  std::string name_;
  std::shared_ptr<StorageTier> backend_;
  const SimClock* clock_;
  mutable std::atomic<bool> dead_{false};
  std::atomic<f64> arm_at_{-1.0};  ///< < 0 means unarmed
};

}  // namespace mlpo
