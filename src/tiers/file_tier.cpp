#include "tiers/file_tier.hpp"

#include <cstdio>
#include <stdexcept>
#include <system_error>

#include "util/key_escape.hpp"

namespace mlpo {

namespace fs = std::filesystem;

FileTier::FileTier(std::string name, fs::path root, f64 read_bw, f64 write_bw)
    : name_(std::move(name)), root_(std::move(root)), read_bw_(read_bw),
      write_bw_(write_bw) {
  fs::create_directories(root_);
}

fs::path FileTier::path_for(const std::string& key) const {
  return root_ / escape_key(key);
}

void FileTier::write(const std::string& key, std::span<const u8> data,
                     u64 sim_bytes) {
  TierStats::TransferScope transfer(stats_);
  const fs::path path = path_for(key);
  // Write to a temp file then rename for atomic replacement — readers never
  // observe a torn object (matters for checkpoint durability claims).
  const fs::path tmp = path.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("FileTier '" + name_ + "': cannot open " +
                             tmp.string());
  }
  const std::size_t written = data.empty()
      ? 0
      : std::fwrite(data.data(), 1, data.size(), f);
  const int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw std::runtime_error("FileTier '" + name_ + "': short write to " +
                             tmp.string());
  }
  fs::rename(tmp, path);
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(sim_bytes ? sim_bytes : data.size(),
                                 std::memory_order_relaxed);
}

void FileTier::read(const std::string& key, std::span<u8> out, u64 sim_bytes) {
  TierStats::TransferScope transfer(stats_);
  const fs::path path = path_for(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::out_of_range("FileTier '" + name_ + "': no object " + key);
  }
  const std::size_t got = out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (got != out.size()) {
    throw std::invalid_argument("FileTier '" + name_ + "': size mismatch for " +
                                key);
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(sim_bytes ? sim_bytes : out.size(),
                              std::memory_order_relaxed);
}

bool FileTier::exists(const std::string& key) const {
  return fs::exists(path_for(key));
}

u64 FileTier::object_size(const std::string& key) const {
  std::error_code ec;
  const auto size = fs::file_size(path_for(key), ec);
  if (ec) throw std::out_of_range("FileTier '" + name_ + "': no object " + key);
  return size;
}

void FileTier::erase(const std::string& key) {
  std::error_code ec;
  fs::remove(path_for(key), ec);
}

}  // namespace mlpo
