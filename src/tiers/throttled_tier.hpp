// Bandwidth/latency emulation wrapper: turns any backend into a device with
// the read/write throughput of a real NVMe or PFS endpoint (Table 1 of the
// paper).
//
// Model:
//   * independent read and write channels (full-duplex, like NVMe queues and
//     PFS network paths), each a FIFO RateLimiter;
//   * fixed per-request setup latency (seek/RPC cost);
//   * transfers split into chunks before entering the channel, so concurrent
//     requests interleave at chunk granularity — aggregate throughput stays
//     at the channel rate while per-request latency grows with queue depth,
//     reproducing the paper's Fig. 4 contention measurements.
#pragma once

#include <memory>

#include "tiers/storage_tier.hpp"
#include "util/rate_limiter.hpp"
#include "util/sim_clock.hpp"

namespace mlpo {

struct ThrottleSpec {
  f64 read_bw;               ///< bytes per virtual second
  f64 write_bw;              ///< bytes per virtual second
  f64 request_latency = 0.0; ///< virtual seconds added per request
  u64 chunk_bytes = 64 * MiB;///< interleave granularity on the channel

  /// Fractional slowdown of a direction while the opposite direction is
  /// simultaneously active (controller/PCIe duplex interference). The paper
  /// observes DeepSpeed's mixed read+write update traffic sustaining only
  /// ~3.2 GB/s against a 5.3 GB/s device (Fig. 9); 0 disables the effect.
  f64 duplex_penalty = 0.0;

  /// Fractional slowdown per *additional* concurrent request beyond the
  /// first (multi-process contention on the storage subsystem, §3.1). The
  /// tier-exclusive concurrency control of MLP-Offload exists precisely to
  /// keep this factor at zero.
  f64 multi_actor_penalty = 0.0;
};

class ThrottledTier : public StorageTier {
 public:
  /// @param backend storage that actually holds the bytes. Shared so several
  ///        logical tiers may aliase one backing store if desired.
  ThrottledTier(std::string name, std::shared_ptr<StorageTier> backend,
                const SimClock& clock, const ThrottleSpec& spec,
                bool persistent = false);

  const std::string& name() const override { return name_; }
  void write(const std::string& key, std::span<const u8> data,
             u64 sim_bytes = 0) override;
  void read(const std::string& key, std::span<u8> out,
            u64 sim_bytes = 0) override;
  bool exists(const std::string& key) const override;
  u64 object_size(const std::string& key) const override;
  void erase(const std::string& key) override;
  void peek(const std::string& key, std::span<u8> out) override {
    backend_->peek(key, out);
  }
  f64 read_bandwidth() const override { return read_channel_.rate(); }
  f64 write_bandwidth() const override { return write_channel_.rate(); }
  bool persistent() const override { return persistent_; }

  /// Live-adjust channel rates (models PFS interference from other jobs; the
  /// adaptive performance model reacts to this, paper §3.3).
  void set_read_bandwidth(f64 bw) { read_channel_.set_rate(bw); }
  void set_write_bandwidth(f64 bw) { write_channel_.set_rate(bw); }

  StorageTier& backend() { return *backend_; }

  /// Concurrent in-flight requests per direction (exposed for tests).
  u32 inflight_reads() const { return inflight_reads_.load(); }
  u32 inflight_writes() const { return inflight_writes_.load(); }

 private:
  /// Pass sim_bytes through `channel` in chunks; returns elapsed vseconds.
  /// `self_inflight`/`other_inflight` select the direction counters so the
  /// contention multipliers can be computed per chunk.
  f64 throttle(RateLimiter& channel, u64 sim_bytes,
               std::atomic<u32>& self_inflight,
               const std::atomic<u32>& other_inflight);

  std::string name_;
  std::shared_ptr<StorageTier> backend_;
  const SimClock* clock_;
  RateLimiter read_channel_;
  RateLimiter write_channel_;
  f64 request_latency_;
  u64 chunk_bytes_;
  f64 duplex_penalty_;
  f64 multi_actor_penalty_;
  bool persistent_;
  std::atomic<u32> inflight_reads_{0};
  std::atomic<u32> inflight_writes_{0};
};

}  // namespace mlpo
