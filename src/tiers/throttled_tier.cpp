#include "tiers/throttled_tier.hpp"

#include <algorithm>

namespace mlpo {

ThrottledTier::ThrottledTier(std::string name,
                             std::shared_ptr<StorageTier> backend,
                             const SimClock& clock, const ThrottleSpec& spec,
                             bool persistent)
    : name_(std::move(name)), backend_(std::move(backend)), clock_(&clock),
      read_channel_(clock, spec.read_bw), write_channel_(clock, spec.write_bw),
      request_latency_(spec.request_latency), chunk_bytes_(spec.chunk_bytes),
      duplex_penalty_(spec.duplex_penalty),
      multi_actor_penalty_(spec.multi_actor_penalty), persistent_(persistent) {}

f64 ThrottledTier::throttle(RateLimiter& channel, u64 sim_bytes,
                            std::atomic<u32>& self_inflight,
                            const std::atomic<u32>& other_inflight) {
  const f64 start = clock_->now();
  self_inflight.fetch_add(1, std::memory_order_acq_rel);
  // Reserve the channel chunk-by-chunk, sampling the contention multipliers
  // per chunk so a transfer that overlaps opposing traffic only part-way is
  // only penalised for the overlapping chunks. Reservations are *paced*:
  // once the pending (reserved-but-unslept) time exceeds a small real-time
  // quantum, sleep up to the current deadline before reserving more. Pacing
  // is what gives concurrent requests bandwidth sharing at chunk
  // granularity — an unpaced reserve-all-then-sleep would degenerate into
  // whole-request FIFO and serialize competing workers — while keeping the
  // sleep count low enough that OS timer jitter stays negligible.
  const f64 pacing_quantum_vsecs = 400e-6 * clock_->time_scale();
  f64 deadline = clock_->now() + request_latency_;
  u64 remaining = sim_bytes;
  while (remaining > 0) {
    const u64 chunk = std::min(remaining, chunk_bytes_);
    const u32 self_now = self_inflight.load(std::memory_order_acquire);
    const u32 other_now = other_inflight.load(std::memory_order_acquire);
    f64 multiplier = 1.0;
    if (self_now > 1) {
      multiplier += multi_actor_penalty_ * static_cast<f64>(self_now - 1);
    }
    if (other_now > 0) multiplier += duplex_penalty_;
    deadline = std::max(deadline, channel.reserve(static_cast<u64>(
                                      static_cast<f64>(chunk) * multiplier)));
    remaining -= chunk;
    if (remaining > 0 && deadline - clock_->now() > pacing_quantum_vsecs) {
      clock_->sleep_until(deadline);
    }
  }
  clock_->sleep_until(deadline);
  self_inflight.fetch_sub(1, std::memory_order_acq_rel);
  return clock_->now() - start;
}

void ThrottledTier::write(const std::string& key, std::span<const u8> data,
                          u64 sim_bytes) {
  TierStats::TransferScope transfer(stats_);
  const u64 bytes = sim_bytes ? sim_bytes : data.size();
  // Move real bytes first (cheap memcpy), then charge the virtual transfer
  // time; ordering does not matter because the caller only observes
  // completion.
  backend_->write(key, data, 0);
  const f64 elapsed =
      throttle(write_channel_, bytes, inflight_writes_, inflight_reads_);
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  stats_.write_usecs.fetch_add(static_cast<u64>(elapsed * 1e6),
                               std::memory_order_relaxed);
}

void ThrottledTier::read(const std::string& key, std::span<u8> out,
                         u64 sim_bytes) {
  TierStats::TransferScope transfer(stats_);
  const u64 bytes = sim_bytes ? sim_bytes : out.size();
  backend_->read(key, out, 0);
  const f64 elapsed =
      throttle(read_channel_, bytes, inflight_reads_, inflight_writes_);
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  stats_.read_usecs.fetch_add(static_cast<u64>(elapsed * 1e6),
                              std::memory_order_relaxed);
}

bool ThrottledTier::exists(const std::string& key) const {
  return backend_->exists(key);
}

u64 ThrottledTier::object_size(const std::string& key) const {
  return backend_->object_size(key);
}

void ThrottledTier::erase(const std::string& key) { backend_->erase(key); }

}  // namespace mlpo
