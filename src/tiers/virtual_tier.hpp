// Virtual multi-path tier (paper §3.2, "unified multi-level, multi-path
// asynchronous offloading using virtual tiers").
//
// Unifies N alternative storages (node-local NVMe, PFS paths, object store
// buckets) behind one tier-like interface. Writers choose a path explicitly
// (the performance model decides placement); reads route automatically via
// a key -> path location map. Each path carries a node-level TierLock so
// the engine can apply process-exclusive concurrency control per path.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tiers/storage_tier.hpp"
#include "tiers/tier_lock.hpp"
#include "util/mutex.hpp"

namespace mlpo {

class VirtualTier {
 public:
  struct Path {
    std::shared_ptr<StorageTier> tier;
    /// Node-level per-direction locks; shared between all VirtualTier
    /// instances of the workers on one node (they alias the same Path
    /// objects). Exclusivity is per channel direction: a worker owning the
    /// read channel of a path does not block another worker's writes, so
    /// the device's duplex capability stays usable while each direction
    /// serves exactly one worker at full bandwidth (paper §3.2's exclusive
    /// access, refined to channel granularity).
    std::shared_ptr<TierLock> read_lock;
    std::shared_ptr<TierLock> write_lock;
  };

  VirtualTier() = default;
  explicit VirtualTier(std::vector<Path> paths) : paths_(std::move(paths)) {}

  /// Add an alternative storage; returns its path index.
  std::size_t add_path(std::shared_ptr<StorageTier> tier,
                       std::shared_ptr<TierLock> read_lock = nullptr,
                       std::shared_ptr<TierLock> write_lock = nullptr);

  std::size_t path_count() const { return paths_.size(); }
  StorageTier& path(std::size_t idx) { return *paths_.at(idx).tier; }
  const StorageTier& path(std::size_t idx) const { return *paths_.at(idx).tier; }
  TierLock* path_read_lock(std::size_t idx) {
    return paths_.at(idx).read_lock.get();
  }
  TierLock* path_write_lock(std::size_t idx) {
    return paths_.at(idx).write_lock.get();
  }

  /// Bandwidth vector <B_i> the performance model consumes; each entry is
  /// min(read_bw, write_bw) of the path, per paper §3.3.
  std::vector<f64> path_bandwidths() const;

  /// Write `data` under `key` on path `path_idx`, updating the location map
  /// (the object is erased from its previous path if it moved).
  void write_to(std::size_t path_idx, const std::string& key,
                std::span<const u8> data, u64 sim_bytes = 0);

  /// Read `key` from whichever path holds it. Throws std::out_of_range if
  /// the key is unknown.
  void read(const std::string& key, std::span<u8> out, u64 sim_bytes = 0);

  /// True when path `idx`'s backend completes transfers on real device
  /// events (StorageTier::supports_async).
  bool path_supports_async(std::size_t idx) const {
    return paths_.at(idx).tier->supports_async();
  }

  /// Async variants of write_to/read: the transfer runs on the backend's
  /// completion engine and `done` fires from its thread. Location-map
  /// bookkeeping happens in the completion shim, after the bytes landed, so
  /// readers never observe a location whose object is still in flight.
  void write_to_async(std::size_t path_idx, const std::string& key,
                      std::span<const u8> data, u64 sim_bytes,
                      StorageTier::AsyncDone done);
  void read_async(const std::string& key, std::span<u8> out, u64 sim_bytes,
                  StorageTier::AsyncDone done);

  /// Untimed inspection read (no throttling, no stats). See
  /// StorageTier::peek.
  void peek(const std::string& key, std::span<u8> out) const;

  /// Path index currently holding `key`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t locate(const std::string& key) const;

  bool exists(const std::string& key) const { return locate(key) != npos; }
  void erase(const std::string& key);

  /// Simulated bytes resident per path (location-map bookkeeping, not
  /// backend scans).
  std::vector<u64> resident_sim_bytes() const;

 private:
  /// paths_ is append-only during setup and immutable once I/O starts, so
  /// it is deliberately not guarded; locations_ is the hot shared map.
  std::vector<Path> paths_;
  mutable SharedMutex mutex_;
  struct Location {
    std::size_t path;
    u64 sim_bytes;
  };
  std::unordered_map<std::string, Location> locations_ MLPO_GUARDED_BY(mutex_);
};

}  // namespace mlpo
