#include "tiers/memory_tier.hpp"

#include <cstring>
#include <stdexcept>

namespace mlpo {

MemoryTier::MemoryTier(std::string name, f64 read_bw, f64 write_bw)
    : name_(std::move(name)), read_bw_(read_bw), write_bw_(write_bw) {}

void MemoryTier::write(const std::string& key, std::span<const u8> data,
                       u64 sim_bytes) {
  TierStats::TransferScope transfer(stats_);
  {
    WriterMutexLock lock(mutex_);
    auto& obj = objects_[key];
    obj.assign(data.begin(), data.end());
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(sim_bytes ? sim_bytes : data.size(),
                                 std::memory_order_relaxed);
}

void MemoryTier::read(const std::string& key, std::span<u8> out,
                      u64 sim_bytes) {
  TierStats::TransferScope transfer(stats_);
  {
    ReaderMutexLock lock(mutex_);
    const auto it = objects_.find(key);
    if (it == objects_.end()) {
      throw std::out_of_range("MemoryTier '" + name_ + "': no object " + key);
    }
    if (it->second.size() != out.size()) {
      throw std::invalid_argument("MemoryTier '" + name_ + "': size mismatch for " +
                                  key);
    }
    std::memcpy(out.data(), it->second.data(), out.size());
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(sim_bytes ? sim_bytes : out.size(),
                              std::memory_order_relaxed);
}

bool MemoryTier::exists(const std::string& key) const {
  ReaderMutexLock lock(mutex_);
  return objects_.count(key) > 0;
}

u64 MemoryTier::object_size(const std::string& key) const {
  ReaderMutexLock lock(mutex_);
  const auto it = objects_.find(key);
  if (it == objects_.end()) {
    throw std::out_of_range("MemoryTier '" + name_ + "': no object " + key);
  }
  return it->second.size();
}

void MemoryTier::erase(const std::string& key) {
  WriterMutexLock lock(mutex_);
  objects_.erase(key);
}

std::size_t MemoryTier::object_count() const {
  ReaderMutexLock lock(mutex_);
  return objects_.size();
}

u64 MemoryTier::stored_bytes() const {
  ReaderMutexLock lock(mutex_);
  u64 total = 0;
  for (const auto& [key, obj] : objects_) total += obj.size();
  return total;
}

}  // namespace mlpo
