#include "tiers/tier_lock.hpp"

#include <cassert>

namespace mlpo {

void TierLock::Guard::release() {
  if (lock_ != nullptr) {
    lock_->unlock(worker_);
    lock_ = nullptr;
  }
}

TierLock::Guard TierLock::lock(int worker) {
  MutexLock lock(mutex_);
  while (owner_ != -1 && owner_ != worker) cv_.wait(lock);
  owner_ = worker;
  ++shares_;
  return Guard(this, worker);
}

std::optional<TierLock::Guard> TierLock::try_lock(int worker) {
  MutexLock lock(mutex_);
  if (owner_ != -1 && owner_ != worker) return std::nullopt;
  owner_ = worker;
  ++shares_;
  return Guard(this, worker);
}

int TierLock::owner() const {
  MutexLock lock(mutex_);
  return owner_;
}

void TierLock::unlock(int worker) {
  bool notify = false;
  {
    MutexLock lock(mutex_);
    assert(owner_ == worker && shares_ > 0);
    (void)worker;
    if (--shares_ == 0) {
      owner_ = -1;
      notify = true;
    }
  }
  if (notify) cv_.notify_all();
}

}  // namespace mlpo
