#include "train/subgroup.hpp"

#include <cstring>
#include <stdexcept>

namespace mlpo {

namespace {

// Serialized layout header; fixed-width fields, host endianness (tiers live
// in the same process).
struct Header {
  u32 magic;
  u32 id;
  u64 sim_params;
  u64 elem_scale;
  u32 step;
  u32 reserved;
};
constexpr u32 kMagic = 0x4D4C504Fu;  // "MLPO"

u64 mix64(u64 x) {
  // splitmix64 finalizer — good avalanche for checksums.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Subgroup::Subgroup(u32 id, u64 sim_params, u64 elem_scale)
    : id_(id), sim_params_(sim_params), elem_scale_(elem_scale) {
  if (elem_scale == 0) throw std::invalid_argument("Subgroup: elem_scale == 0");
  if (sim_params == 0) throw std::invalid_argument("Subgroup: sim_params == 0");
  // Round up so even tiny subgroups materialise at least one element.
  const u64 real = (sim_params + elem_scale - 1) / elem_scale;
  params_.assign(real, 0.0f);
  momentum_.assign(real, 0.0f);
  variance_.assign(real, 0.0f);
}

u64 Subgroup::serialized_bytes() const {
  return sizeof(Header) + 3 * params_.size() * sizeof(f32);
}

void Subgroup::serialize(std::span<u8> out) const {
  if (out.size() != serialized_bytes()) {
    throw std::invalid_argument("Subgroup::serialize: bad buffer size");
  }
  Header h{kMagic, id_, sim_params_, elem_scale_, step_, 0};
  u8* p = out.data();
  std::memcpy(p, &h, sizeof(h));
  p += sizeof(h);
  const std::size_t arr = params_.size() * sizeof(f32);
  std::memcpy(p, params_.data(), arr);
  p += arr;
  std::memcpy(p, momentum_.data(), arr);
  p += arr;
  std::memcpy(p, variance_.data(), arr);
}

void Subgroup::deserialize(std::span<const u8> in) {
  if (in.size() != serialized_bytes()) {
    throw std::invalid_argument("Subgroup::deserialize: bad buffer size");
  }
  Header h{};
  const u8* p = in.data();
  std::memcpy(&h, p, sizeof(h));
  p += sizeof(h);
  if (h.magic != kMagic || h.id != id_ || h.sim_params != sim_params_ ||
      h.elem_scale != elem_scale_) {
    throw std::runtime_error("Subgroup::deserialize: header mismatch for id " +
                             std::to_string(id_));
  }
  step_ = h.step;
  const std::size_t arr = params_.size() * sizeof(f32);
  std::memcpy(params_.data(), p, arr);
  p += arr;
  std::memcpy(momentum_.data(), p, arr);
  p += arr;
  std::memcpy(variance_.data(), p, arr);
}

u64 Subgroup::checksum() const {
  u64 h = mix64(id_ ^ (sim_params_ << 20) ^ step_);
  const auto fold = [&h](std::span<const f32> arr) {
    for (const f32 v : arr) {
      u32 bits;
      std::memcpy(&bits, &v, sizeof(bits));
      h = mix64(h ^ bits);
    }
  };
  fold(params_);
  fold(momentum_);
  fold(variance_);
  return h;
}

std::string Subgroup::key(int rank, u32 id) {
  return "sg/" + std::to_string(rank) + "/" + std::to_string(id);
}

namespace {
inline u64 splitmix64(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

void Subgroup::deterministic_param_init(int rank, u32 id,
                                        std::span<f32> params) {
  const u64 base = splitmix64(0xC0FFEEull ^ (static_cast<u64>(rank) << 40) ^
                              (static_cast<u64>(id) << 8));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const u64 h = splitmix64(base + i);
    const f64 unit = static_cast<f64>(h >> 11) * 0x1.0p-53;
    params[i] = static_cast<f32>((unit - 0.5) * 0.04);
  }
}

}  // namespace mlpo
