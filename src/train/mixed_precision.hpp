// Mixed-precision conversion utilities used by both engines:
//   * baseline path: upscale FP16 gradients to FP32 on the host during the
//     backward pass, then flush FP32 to storage;
//   * MLP-Offload path: keep FP16 on the host and upscale *in place during
//     the update* (paper §3.2, delayed in-place conversion) — CPU conversion
//     throughput (~65 GB/s on Testbed-1) dwarfs tier fetch bandwidth, so the
//     conversion hides entirely behind I/O.
#pragma once

#include <span>

#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace mlpo {

/// Parallel FP16 -> FP32 upscale (pool may be null for serial execution).
void upscale_fp16_to_fp32(std::span<const u16> src, std::span<f32> dst,
                          ThreadPool* pool = nullptr);

/// Parallel FP32 -> FP16 downscale with round-to-nearest-even.
void downscale_fp32_to_fp16(std::span<const f32> src, std::span<u16> dst,
                            ThreadPool* pool = nullptr);

/// Cost model for conversions in the scaled-time emulation: converting
/// sim_bytes of FP32 output at `throughput` bytes per virtual second.
struct ConvertCost {
  f64 fp32_bytes_per_sec = 65.0 * GB;  ///< Testbed-1 measurement from paper

  f64 seconds_for_params(u64 sim_params) const {
    return static_cast<f64>(sim_params * kFp32Bytes) / fp32_bytes_per_sec;
  }
};

}  // namespace mlpo
