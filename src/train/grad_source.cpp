#include "train/grad_source.hpp"

#include "util/fp16.hpp"

namespace mlpo {

namespace {

inline u64 splitmix64(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Map a 64-bit hash to a small centred float (~N(0, 0.02) shaped, uniform is
// fine for exercising the optimizer), then round-trip through FP16 so every
// generated gradient is exactly FP16-representable.
inline u16 hash_to_fp16(u64 h) {
  const f64 unit = static_cast<f64>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const f32 value = static_cast<f32>((unit - 0.5) * 0.04);
  return Fp16::encode(value);
}

}  // namespace

void GradSource::generate_fp16(int rank, u32 subgroup_id, u64 iteration,
                               std::span<u16> out) const {
  const u64 base = splitmix64(seed_ ^ (static_cast<u64>(rank) << 48) ^
                              (static_cast<u64>(subgroup_id) << 24) ^ iteration);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = hash_to_fp16(splitmix64(base + i));
  }
}

void GradSource::generate_fp32(int rank, u32 subgroup_id, u64 iteration,
                               std::span<f32> out) const {
  const u64 base = splitmix64(seed_ ^ (static_cast<u64>(rank) << 48) ^
                              (static_cast<u64>(subgroup_id) << 24) ^ iteration);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = Fp16::decode(hash_to_fp16(splitmix64(base + i)));
  }
}

}  // namespace mlpo
