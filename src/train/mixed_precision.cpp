#include "train/mixed_precision.hpp"

#include <stdexcept>

#include "util/fp16.hpp"

namespace mlpo {

void upscale_fp16_to_fp32(std::span<const u16> src, std::span<f32> dst,
                          ThreadPool* pool) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("upscale: size mismatch");
  }
  if (pool == nullptr) {
    fp16_to_fp32(src, dst);
    return;
  }
  pool->parallel_for(src.size(), [&](u64 begin, u64 end) {
    fp16_to_fp32(src.subspan(begin, end - begin),
                 dst.subspan(begin, end - begin));
  });
}

void downscale_fp32_to_fp16(std::span<const f32> src, std::span<u16> dst,
                            ThreadPool* pool) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("downscale: size mismatch");
  }
  if (pool == nullptr) {
    fp32_to_fp16(src, dst);
    return;
  }
  pool->parallel_for(src.size(), [&](u64 begin, u64 end) {
    fp32_to_fp16(src.subspan(begin, end - begin),
                 dst.subspan(begin, end - begin));
  });
}

}  // namespace mlpo
