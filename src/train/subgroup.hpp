// Optimizer-state subgroups — the unit of offloading.
//
// DeepSpeed ZeRO-3 shards each rank's optimizer state into fixed-size
// "subgroups" of M parameters (paper §2); MLP-Offload moves whole subgroups
// between host memory and third-level storage. A subgroup carries the FP32
// master parameters, Adam momentum and variance (12 bytes/param on tiers).
//
// Scale reduction: a subgroup representing `sim_params` simulated parameters
// allocates only `sim_params / elem_scale` real floats. All numeric kernels
// run on the real floats; all I/O timing charges the simulated byte count.
// With elem_scale == 1 the subgroup is a full-fidelity optimizer shard.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace mlpo {

class Subgroup {
 public:
  /// @param sim_params simulated parameter count (e.g. 100e6)
  /// @param elem_scale simulated params per real element (>= 1)
  Subgroup(u32 id, u64 sim_params, u64 elem_scale = 1);

  u32 id() const { return id_; }
  u64 sim_params() const { return sim_params_; }
  u64 elem_scale() const { return elem_scale_; }
  u64 real_elems() const { return params_.size(); }
  u32 step() const { return step_; }
  void set_step(u32 s) { step_ = s; }

  std::span<f32> params() { return params_; }
  std::span<f32> momentum() { return momentum_; }
  std::span<f32> variance() { return variance_; }
  std::span<const f32> params() const { return params_; }
  std::span<const f32> momentum() const { return momentum_; }
  std::span<const f32> variance() const { return variance_; }

  /// Simulated bytes of optimizer state (P+M+V in FP32) — what a tier
  /// transfer of this subgroup costs, paper's 12 B/param payload.
  u64 sim_state_bytes() const { return sim_params_ * kOptimStateBytesPerParam; }

  /// Simulated bytes when FP32 gradients ride along (ZeRO-3 baseline
  /// behaviour, 16 B/param).
  u64 sim_state_with_grad_bytes() const {
    return sim_params_ * kOptimStateWithGradBytesPerParam;
  }

  /// Simulated FP16 parameter bytes (what H2D pushes back to the GPU).
  u64 sim_fp16_param_bytes() const { return sim_params_ * kFp16Bytes; }

  /// Serialized (real) size in bytes: header + three FP32 arrays.
  u64 serialized_bytes() const;

  /// Serialize into `out` (must be exactly serialized_bytes()).
  void serialize(std::span<u8> out) const;

  /// Overwrite this subgroup's state from `in`; id/sim_params/elem_scale in
  /// the header must match (guards against cross-subgroup corruption).
  void deserialize(std::span<const u8> in);

  /// Order-independent content hash for correctness tests.
  u64 checksum() const;

  /// Storage key used on tiers: "sg/<rank>/<id>".
  static std::string key(int rank, u32 id);

  /// Deterministic parameter initialisation: small centred values keyed on
  /// (rank, id) only — identical for every engine implementation and
  /// policy configuration, so end-state digests are comparable across the
  /// whole equivalence grid.
  static void deterministic_param_init(int rank, u32 id,
                                       std::span<f32> params);

 private:
  u32 id_;
  u64 sim_params_;
  u64 elem_scale_;
  u32 step_ = 0;
  std::vector<f32> params_;
  std::vector<f32> momentum_;
  std::vector<f32> variance_;
};

}  // namespace mlpo
