// Deterministic synthetic gradient generator — the stand-in for the real
// backward pass (which this library does not compute; see DESIGN.md's
// substitution table).
//
// Properties the engines rely on:
//   * deterministic in (rank, subgroup id, iteration, element index), so the
//     baseline and MLP-Offload engines consume *identical* gradients no
//     matter in which order they process subgroups — the foundation of the
//     bitwise-equivalence tests;
//   * values are exactly representable in FP16 (they are produced by
//     encoding to FP16 first), so FP16 transport is lossless by
//     construction and reorder-equivalence is exact.
#pragma once

#include <span>

#include "util/common.hpp"

namespace mlpo {

class GradSource {
 public:
  explicit GradSource(u64 seed = 0x5EEDF00Dull) : seed_(seed) {}

  /// Fill `out` with FP16 gradient bits for the given coordinates.
  void generate_fp16(int rank, u32 subgroup_id, u64 iteration,
                     std::span<u16> out) const;

  /// Convenience: same values upscaled to FP32 (bit-exact with upscaling
  /// the FP16 output).
  void generate_fp32(int rank, u32 subgroup_id, u64 iteration,
                     std::span<f32> out) const;

 private:
  u64 seed_;
};

}  // namespace mlpo
