// Host-side FP16 gradient accumulation buffer.
//
// The host reserves room for the FP16 gradients of *all* subgroups to
// support gradient accumulation (paper §3.2) — MLP-Offload piggybacks on
// this buffer to avoid ever flushing gradients to third-level storage: the
// backward pass deposits FP16 gradients here, accumulation sums across
// micro-batches, and the update phase upscales in place.
//
// Accumulation is performed in FP32 and re-encoded to FP16 storage, the
// standard loss-scale-free behaviour for an FP16 master gradient buffer.
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace mlpo {

class GradAccumulator {
 public:
  /// @param subgroup_real_elems real (scale-reduced) element count per
  ///        subgroup buffer. One FP16 buffer is allocated per subgroup up
  ///        front, mirroring the host reservation the paper describes.
  GradAccumulator(u32 num_subgroups, u64 subgroup_real_elems);

  /// Variant for ZeRO-3 layouts where the last subgroup is a remainder:
  /// one buffer per entry, individually sized.
  explicit GradAccumulator(const std::vector<u64>& elems_per_subgroup);

  u32 num_subgroups() const { return static_cast<u32>(buffers_.size()); }
  u64 elems(u32 id) const { return buffers_.at(id).size(); }

  /// Overwrite subgroup `id`'s buffer (first micro-batch of an accumulation
  /// window).
  void store(u32 id, std::span<const u16> grads_fp16);

  /// Add `grads_fp16` into subgroup `id`'s buffer (subsequent micro-batches).
  void accumulate(u32 id, std::span<const u16> grads_fp16,
                  ThreadPool* pool = nullptr);

  /// FP16 view of the accumulated gradients for subgroup `id`.
  std::span<const u16> fp16(u32 id) const;

  /// Upscale subgroup `id`'s accumulated gradients into `out` (the delayed
  /// in-place conversion of paper §3.2).
  void upscale_into(u32 id, std::span<f32> out, ThreadPool* pool = nullptr) const;

  /// Zero every buffer (after the update phase consumes the gradients).
  void reset();

 private:
  std::vector<std::vector<u16>> buffers_;
};

}  // namespace mlpo
