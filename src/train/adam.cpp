#include "train/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace mlpo {

namespace {

// Shared inner loop; the f64 bias corrections are hoisted by the callers so
// both paths use identical constants.
inline void adam_span(const AdamConfig& cfg, f32* p, f32* m, f32* v,
                      const f32* g, u64 begin, u64 end, f32 inv_bc1,
                      f32 inv_bc2) {
  const f32 b1 = cfg.beta1;
  const f32 b2 = cfg.beta2;
  const f32 one_m_b1 = 1.0f - b1;
  const f32 one_m_b2 = 1.0f - b2;
  const f32 lr = cfg.lr;
  const f32 eps = cfg.eps;
  const f32 wd = cfg.weight_decay;
  for (u64 i = begin; i < end; ++i) {
    const f32 grad = g[i] + wd * p[i];
    m[i] = b1 * m[i] + one_m_b1 * grad;
    v[i] = b2 * v[i] + one_m_b2 * grad * grad;
    const f32 m_hat = m[i] * inv_bc1;
    const f32 v_hat = v[i] * inv_bc2;
    p[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

void check_sizes(std::span<f32> params, std::span<f32> momentum,
                 std::span<f32> variance, std::span<const f32> grads,
                 u32 step) {
  if (params.size() != momentum.size() || params.size() != variance.size() ||
      params.size() != grads.size()) {
    throw std::invalid_argument("adam_update: array size mismatch");
  }
  if (step == 0) throw std::invalid_argument("adam_update: step must be >= 1");
}

}  // namespace

void adam_update_reference(const AdamConfig& cfg, std::span<f32> params,
                           std::span<f32> momentum, std::span<f32> variance,
                           std::span<const f32> grads, u32 step) {
  check_sizes(params, momentum, variance, grads, step);
  const f32 inv_bc1 =
      1.0f / (1.0f - static_cast<f32>(std::pow(cfg.beta1, step)));
  const f32 inv_bc2 =
      1.0f / (1.0f - static_cast<f32>(std::pow(cfg.beta2, step)));
  adam_span(cfg, params.data(), momentum.data(), variance.data(), grads.data(),
            0, params.size(), inv_bc1, inv_bc2);
}

void adam_update(const AdamConfig& cfg, std::span<f32> params,
                 std::span<f32> momentum, std::span<f32> variance,
                 std::span<const f32> grads, u32 step, ThreadPool* pool) {
  check_sizes(params, momentum, variance, grads, step);
  const f32 inv_bc1 =
      1.0f / (1.0f - static_cast<f32>(std::pow(cfg.beta1, step)));
  const f32 inv_bc2 =
      1.0f / (1.0f - static_cast<f32>(std::pow(cfg.beta2, step)));
  if (pool == nullptr) {
    adam_span(cfg, params.data(), momentum.data(), variance.data(),
              grads.data(), 0, params.size(), inv_bc1, inv_bc2);
    return;
  }
  pool->parallel_for(params.size(), [&](u64 begin, u64 end) {
    adam_span(cfg, params.data(), momentum.data(), variance.data(),
              grads.data(), begin, end, inv_bc1, inv_bc2);
  });
}

}  // namespace mlpo
