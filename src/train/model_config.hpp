// Transformer model configurations (paper Table 2) and the derived memory
// footprints that drive offloading decisions.
//
// Parameter counting follows the standard GPT-style decoder estimate used
// by Megatron/DeepSpeed sizing tools:
//   per layer: 12*H^2 + 13*H   (attention 4H^2+4H, MLP 8H^2+5H, norms 4H)
//   embeddings: V*H (+ positional H*S, negligible at these scales)
// which reproduces the headline sizes of Table 2 within a few percent —
// the paper itself quotes rounded marketing sizes (40B, 52B, ...).
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace mlpo {

struct ModelConfig {
  std::string name;   ///< e.g. "40B"
  u32 num_layers;     ///< N_L
  u32 hidden_dim;     ///< D_H
  u32 attention_heads;///< A_H
  u32 vocab_size = 50257;
  u32 seq_length = 2048;

  /// Total trainable parameters (layers + embeddings).
  u64 parameters() const;

  /// FP16 model-state bytes resident on the GPUs during fwd/bwd.
  u64 fp16_param_bytes() const { return parameters() * kFp16Bytes; }

  /// FP32 optimizer-state bytes (master params + momentum + variance) —
  /// the payload that gets offloaded.
  u64 optimizer_state_bytes() const {
    return parameters() * kOptimStateBytesPerParam;
  }

  /// FP16 gradient bytes produced by one backward pass.
  u64 fp16_grad_bytes() const { return parameters() * kFp16Bytes; }
};

/// The seven evaluation models of paper Table 2 (40B..280B).
const std::vector<ModelConfig>& paper_models();

/// Lookup by Table 2 name ("40B", "52B", "70B", "100B", "120B", "130B",
/// "280B"); throws std::out_of_range for unknown names.
const ModelConfig& paper_model(const std::string& name);

/// The 20B host-memory baseline model used in the paper's gap analysis
/// (Fig. 3): optimizer state fits in 512 GB host RAM.
ModelConfig baseline_20b();

}  // namespace mlpo
