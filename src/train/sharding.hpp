// ZeRO-3 sharding layout: partition a model's parameters across data-parallel
// ranks, then decompose each rank's shard into fixed-size subgroups (paper
// §2, Fig. 2b). Subgroup size defaults to the paper's evaluation choice of
// 100M parameters (vs DeepSpeed's default 1B) for better I/O/compute overlap
// and load balancing.
#pragma once

#include <vector>

#include "train/model_config.hpp"
#include "util/common.hpp"

namespace mlpo {

struct ShardLayout {
  u64 total_params;        ///< whole-model parameter count
  u32 world_size;          ///< number of ranks (GPUs)
  int rank;                ///< this worker's rank
  u64 shard_params;        ///< parameters owned by this rank
  u64 subgroup_params;     ///< nominal parameters per subgroup
  std::vector<u64> subgroup_sizes;  ///< per-subgroup parameter counts

  /// Elastic layouts only: the *global* subgroup id behind each local
  /// index. The model is decomposed into world-size-independent global
  /// subgroups first and ownership is remapped onto ranks second, so a
  /// checkpoint written under one world size can be restored under another
  /// (elastic restart). Empty for classic per-rank layouts.
  std::vector<u32> subgroup_gids;

  u32 num_subgroups() const { return static_cast<u32>(subgroup_sizes.size()); }

  bool elastic() const { return !subgroup_gids.empty(); }

  /// World-size-independent identity of local subgroup `local`: its global
  /// id for elastic layouts, the local id itself otherwise.
  u32 global_id(u32 local) const {
    return elastic() ? subgroup_gids.at(local) : local;
  }

  /// Rank used for deterministic content generation (parameter init,
  /// synthetic gradients). Elastic layouts key content on the global
  /// subgroup id alone (canonical rank 0) so the training state is
  /// bit-identical across node counts; classic layouts key on the real
  /// rank, as the per-rank equivalence tests expect.
  int content_rank() const { return elastic() ? 0 : rank; }
};

inline constexpr u64 kDefaultSubgroupParams = 100'000'000ull;

/// Compute rank `rank`'s shard of `model` across `world_size` ranks, split
/// into subgroups of `subgroup_params` (last subgroup takes the remainder).
/// Parameters divide as evenly as possible: the first (P % W) ranks hold one
/// extra parameter.
ShardLayout make_shard_layout(const ModelConfig& model, u32 world_size,
                              int rank,
                              u64 subgroup_params = kDefaultSubgroupParams);

/// Same but from a raw parameter count (bench harnesses sweep sizes without
/// constructing full model configs).
ShardLayout make_shard_layout(u64 total_params, u32 world_size, int rank,
                              u64 subgroup_params = kDefaultSubgroupParams);

/// Elastic variant: decompose `total_params` into global subgroups of
/// `subgroup_params` (last takes the remainder) *independently of the world
/// size*, then assign contiguous gid blocks to ranks as evenly as possible
/// (the first G % W ranks own one extra subgroup). Because the subgroup
/// boundaries never move, a checkpoint keyed by gid restores under any
/// world size — the remap that backs elastic restart. Throws if the world
/// is larger than the global subgroup count (a rank would own nothing).
ShardLayout make_elastic_shard_layout(
    u64 total_params, u32 world_size, int rank,
    u64 subgroup_params = kDefaultSubgroupParams);

ShardLayout make_elastic_shard_layout(
    const ModelConfig& model, u32 world_size, int rank,
    u64 subgroup_params = kDefaultSubgroupParams);

}  // namespace mlpo
