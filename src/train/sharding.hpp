// ZeRO-3 sharding layout: partition a model's parameters across data-parallel
// ranks, then decompose each rank's shard into fixed-size subgroups (paper
// §2, Fig. 2b). Subgroup size defaults to the paper's evaluation choice of
// 100M parameters (vs DeepSpeed's default 1B) for better I/O/compute overlap
// and load balancing.
#pragma once

#include <vector>

#include "train/model_config.hpp"
#include "util/common.hpp"

namespace mlpo {

struct ShardLayout {
  u64 total_params;        ///< whole-model parameter count
  u32 world_size;          ///< number of ranks (GPUs)
  int rank;                ///< this worker's rank
  u64 shard_params;        ///< parameters owned by this rank
  u64 subgroup_params;     ///< nominal parameters per subgroup
  std::vector<u64> subgroup_sizes;  ///< per-subgroup parameter counts

  u32 num_subgroups() const { return static_cast<u32>(subgroup_sizes.size()); }
};

inline constexpr u64 kDefaultSubgroupParams = 100'000'000ull;

/// Compute rank `rank`'s shard of `model` across `world_size` ranks, split
/// into subgroups of `subgroup_params` (last subgroup takes the remainder).
/// Parameters divide as evenly as possible: the first (P % W) ranks hold one
/// extra parameter.
ShardLayout make_shard_layout(const ModelConfig& model, u32 world_size,
                              int rank,
                              u64 subgroup_params = kDefaultSubgroupParams);

/// Same but from a raw parameter count (bench harnesses sweep sizes without
/// constructing full model configs).
ShardLayout make_shard_layout(u64 total_params, u32 world_size, int rank,
                              u64 subgroup_params = kDefaultSubgroupParams);

}  // namespace mlpo
