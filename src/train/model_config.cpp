#include "train/model_config.hpp"

#include <stdexcept>

namespace mlpo {

u64 ModelConfig::parameters() const {
  const u64 h = hidden_dim;
  const u64 per_layer = 12 * h * h + 13 * h;
  const u64 layers = static_cast<u64>(num_layers) * per_layer;
  const u64 embeddings = static_cast<u64>(vocab_size) * h;
  return layers + embeddings;
}

const std::vector<ModelConfig>& paper_models() {
  // N_L / D_H / A_H exactly as listed in Table 2.
  static const std::vector<ModelConfig> kModels = {
      {"40B", 128, 5120, 40},
      {"52B", 64, 8192, 64},
      {"70B", 80, 8192, 64},
      {"100B", 124, 8192, 64},
      {"120B", 96, 10240, 80},
      {"130B", 70, 12288, 96},
      {"280B", 72, 16384, 128},
  };
  return kModels;
}

const ModelConfig& paper_model(const std::string& name) {
  for (const auto& m : paper_models()) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("paper_model: unknown model " + name);
}

ModelConfig baseline_20b() {
  // LLaMA-20B-class config used as the host-memory-resident reference in
  // Fig. 3 (optimizer state ~240 GB < 512 GB host RAM).
  return ModelConfig{"20B", 64, 5120, 40};
}

}  // namespace mlpo
