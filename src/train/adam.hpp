// CPU Adam optimizer kernel (Kingma & Ba 2014), the update-phase compute of
// offloaded training: when the optimizer state lives on host/disk, updates
// run on the CPU to avoid shipping FP32 state through the GPU (paper §2,
// "Optimizer State Offloading").
//
// Two entry points: a scalar reference (tests) and a multithreaded kernel
// (the engine's production path). Both implement the same math: decoupled
// weight decay off, bias-corrected first/second moments.
#pragma once

#include <span>

#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace mlpo {

struct AdamConfig {
  f32 lr = 1e-4f;
  f32 beta1 = 0.9f;
  f32 beta2 = 0.999f;
  f32 eps = 1e-8f;
  f32 weight_decay = 0.0f;  ///< L2-style (added to the gradient)
};

/// One Adam step on [params, momentum, variance] given gradients.
/// `step` is the 1-based global step used for bias correction.
/// Scalar loop; bit-exact reference for the parallel kernel.
void adam_update_reference(const AdamConfig& cfg, std::span<f32> params,
                           std::span<f32> momentum, std::span<f32> variance,
                           std::span<const f32> grads, u32 step);

/// Multithreaded Adam step. Partitions the arrays over `pool` (or runs the
/// scalar loop when pool is null). Element-wise independent, so the result
/// is bit-identical to the reference regardless of partitioning.
void adam_update(const AdamConfig& cfg, std::span<f32> params,
                 std::span<f32> momentum, std::span<f32> variance,
                 std::span<const f32> grads, u32 step,
                 ThreadPool* pool = nullptr);

}  // namespace mlpo
