#include "train/grad_accum.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fp16.hpp"

namespace mlpo {

GradAccumulator::GradAccumulator(u32 num_subgroups, u64 subgroup_real_elems) {
  buffers_.resize(num_subgroups);
  for (auto& b : buffers_) b.assign(subgroup_real_elems, 0);
}

GradAccumulator::GradAccumulator(const std::vector<u64>& elems_per_subgroup) {
  buffers_.resize(elems_per_subgroup.size());
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    buffers_[i].assign(elems_per_subgroup[i], 0);
  }
}

void GradAccumulator::store(u32 id, std::span<const u16> grads_fp16) {
  auto& buf = buffers_.at(id);
  if (grads_fp16.size() != buf.size()) {
    throw std::invalid_argument("GradAccumulator::store: size mismatch");
  }
  std::copy(grads_fp16.begin(), grads_fp16.end(), buf.begin());
}

void GradAccumulator::accumulate(u32 id, std::span<const u16> grads_fp16,
                                 ThreadPool* pool) {
  auto& buf = buffers_.at(id);
  if (grads_fp16.size() != buf.size()) {
    throw std::invalid_argument("GradAccumulator::accumulate: size mismatch");
  }
  const auto add_range = [&](u64 begin, u64 end) {
    for (u64 i = begin; i < end; ++i) {
      const f32 sum = Fp16::decode(buf[i]) + Fp16::decode(grads_fp16[i]);
      buf[i] = Fp16::encode(sum);
    }
  };
  if (pool == nullptr) {
    add_range(0, buf.size());
  } else {
    pool->parallel_for(buf.size(), add_range);
  }
}

std::span<const u16> GradAccumulator::fp16(u32 id) const {
  return buffers_.at(id);
}

void GradAccumulator::upscale_into(u32 id, std::span<f32> out,
                                   ThreadPool* pool) const {
  const auto& buf = buffers_.at(id);
  if (out.size() != buf.size()) {
    throw std::invalid_argument("GradAccumulator::upscale_into: size mismatch");
  }
  const auto convert = [&](u64 begin, u64 end) {
    fp16_to_fp32(std::span<const u16>(buf).subspan(begin, end - begin),
                 out.subspan(begin, end - begin));
  };
  if (pool == nullptr) {
    convert(0, buf.size());
  } else {
    pool->parallel_for(buf.size(), convert);
  }
}

void GradAccumulator::reset() {
  for (auto& b : buffers_) std::fill(b.begin(), b.end(), 0);
}

}  // namespace mlpo
