#include "train/sharding.hpp"

#include <algorithm>
#include <stdexcept>

namespace mlpo {

ShardLayout make_shard_layout(u64 total_params, u32 world_size, int rank,
                              u64 subgroup_params) {
  if (world_size == 0) throw std::invalid_argument("sharding: world_size == 0");
  if (rank < 0 || static_cast<u32>(rank) >= world_size) {
    throw std::invalid_argument("sharding: rank out of range");
  }
  if (subgroup_params == 0) {
    throw std::invalid_argument("sharding: subgroup_params == 0");
  }

  ShardLayout layout;
  layout.total_params = total_params;
  layout.world_size = world_size;
  layout.rank = rank;
  layout.subgroup_params = subgroup_params;

  const u64 base = total_params / world_size;
  const u64 rem = total_params % world_size;
  layout.shard_params = base + (static_cast<u64>(rank) < rem ? 1 : 0);

  u64 remaining = layout.shard_params;
  while (remaining > 0) {
    const u64 size = std::min(remaining, subgroup_params);
    layout.subgroup_sizes.push_back(size);
    remaining -= size;
  }
  return layout;
}

ShardLayout make_shard_layout(const ModelConfig& model, u32 world_size,
                              int rank, u64 subgroup_params) {
  return make_shard_layout(model.parameters(), world_size, rank,
                           subgroup_params);
}

ShardLayout make_elastic_shard_layout(u64 total_params, u32 world_size,
                                      int rank, u64 subgroup_params) {
  if (world_size == 0) throw std::invalid_argument("sharding: world_size == 0");
  if (rank < 0 || static_cast<u32>(rank) >= world_size) {
    throw std::invalid_argument("sharding: rank out of range");
  }
  if (subgroup_params == 0) {
    throw std::invalid_argument("sharding: subgroup_params == 0");
  }
  if (total_params == 0) {
    throw std::invalid_argument("sharding: total_params == 0");
  }

  // World-size-independent global decomposition.
  const u64 groups = (total_params + subgroup_params - 1) / subgroup_params;
  if (groups < world_size) {
    throw std::invalid_argument(
        "sharding: elastic layout needs at least one global subgroup per "
        "rank (" +
        std::to_string(groups) + " subgroups < world_size " +
        std::to_string(world_size) + "); lower subgroup_params");
  }

  ShardLayout layout;
  layout.total_params = total_params;
  layout.world_size = world_size;
  layout.rank = rank;
  layout.subgroup_params = subgroup_params;

  // Contiguous gid blocks, first (groups % world_size) ranks get one extra.
  const u64 base = groups / world_size;
  const u64 rem = groups % world_size;
  const u64 r = static_cast<u64>(rank);
  const u64 owned = base + (r < rem ? 1 : 0);
  const u64 first = r * base + std::min(r, rem);

  layout.shard_params = 0;
  layout.subgroup_sizes.reserve(owned);
  layout.subgroup_gids.reserve(owned);
  for (u64 g = first; g < first + owned; ++g) {
    const u64 size = g + 1 == groups
        ? total_params - g * subgroup_params
        : subgroup_params;
    layout.subgroup_sizes.push_back(size);
    layout.subgroup_gids.push_back(static_cast<u32>(g));
    layout.shard_params += size;
  }
  return layout;
}

ShardLayout make_elastic_shard_layout(const ModelConfig& model,
                                      u32 world_size, int rank,
                                      u64 subgroup_params) {
  return make_elastic_shard_layout(model.parameters(), world_size, rank,
                                   subgroup_params);
}

}  // namespace mlpo
