// Checkpoint pre-staging (paper §3.3): because the performance model keeps
// a bandwidth-proportional share of the optimizer state on the persistent
// PFS path, a checkpoint only needs to flush the host- and NVMe-resident
// remainder. This example trains a few iterations, then checkpoints each
// worker's shard and reports how many bytes pre-staging saved — comparing
// MLP-Offload against the NVMe-only baseline, which must flush everything.
#include <cstdio>

#include "core/checkpoint.hpp"
#include "runtime/node.hpp"
#include "telemetry/table_printer.hpp"
#include "tiers/memory_tier.hpp"

int main() {
  using namespace mlpo;
  std::printf("Checkpoint pre-staging via multi-path placement (70B, "
              "Testbed-1)\n\n");

  TablePrinter table({"Engine", "Total (GB)", "Pre-staged (GB)",
                      "Flushed (GB)", "Saved", "Ckpt time (s)"});
  for (const int mlp : {0, 1}) {
    SimClock clock(1000.0);
    NodeConfig cfg;
    cfg.model = paper_model("70B");
    cfg.testbed = TestbedSpec::testbed1();
    cfg.engine_opts = mlp ? EngineOptions::mlp_offload()
                          : EngineOptions::deepspeed_zero3();
    cfg.engine_opts.elem_scale = 65536;
    cfg.attach_pfs = true;  // the checkpoint store needs the path to exist

    NodeSim node(clock, cfg);
    node.initialize();
    node.run(2, 0);

    // Checkpoint every worker's shard into a dedicated persistent store.
    MemoryTier ckpt_store("checkpoint-store");
    CheckpointReport total;
    for (u32 w = 0; w < node.worker_count(); ++w) {
      const auto r = checkpoint_prestage(node.worker(w).engine(), ckpt_store);
      total.total_sim_bytes += r.total_sim_bytes;
      total.prestaged_sim_bytes += r.prestaged_sim_bytes;
      total.flushed_sim_bytes += r.flushed_sim_bytes;
      total.seconds += r.seconds;
    }
    table.add_row({mlp ? "MLP-Offload" : "DeepSpeed ZeRO-3 (NVMe only)",
                   TablePrinter::num(static_cast<f64>(total.total_sim_bytes) / 1e9, 0),
                   TablePrinter::num(static_cast<f64>(total.prestaged_sim_bytes) / 1e9, 0),
                   TablePrinter::num(static_cast<f64>(total.flushed_sim_bytes) / 1e9, 0),
                   TablePrinter::pct(total.prestaged_fraction()),
                   TablePrinter::num(total.seconds, 1)});
  }
  table.print();
  std::printf("\nPre-staged bytes integrate with DataStates-style "
              "asynchronous checkpointing:\nonly the non-persistent "
              "remainder needs flushing during fwd/bwd.\n");
  return 0;
}
