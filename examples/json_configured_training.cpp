// JSON-configured training — mirroring the paper's integration surface
// ("MLP-Offload can be enabled and configured via two JSON key-value pairs
// in the DeepSpeed runtime configuration", §3.5).
//
// Usage: json_configured_training [config.json]
// Without an argument, a built-in configuration is used.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "resilience/recovery_driver.hpp"
#include "runtime/trainer.hpp"

namespace {
const char* kDefaultConfig = R"({
  "model": "52B",
  "testbed": "testbed1",
  "nodes": 1,
  "accum_steps": 2,
  "elem_scale": 65536,
  "time_scale": 1000,
  "mlp_offload": {
    "enabled": true,
    "multipath": true,
    "placement_policy": "adaptive_ema",
    "update_order_policy": "alternating_cache_friendly",
    "delayed_grad_conversion": true,
    "tier_exclusive_locking": true
  }
})";
}  // namespace

int main(int argc, char** argv) {
  using namespace mlpo;

  std::string text = kDefaultConfig;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << file.rdbuf();
    text = ss.str();
  }

  TrainerConfig cfg;
  try {
    cfg = trainer_config_from_json(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 1;
  }

  std::printf("Configuration:\n%s\n\n", json::parse(text).dump(2).c_str());
  std::printf("Training %s on %s, %u node(s), accumulation %u...\n\n",
              cfg.model.name.c_str(), cfg.testbed.name.c_str(), cfg.nodes,
              cfg.accum_steps);

  Trainer trainer(cfg);
  trainer.initialize();
  for (const auto& r : trainer.run(3, 0)) {
    std::printf("iter %llu: fwd %.2f s, bwd %.1f s, update %.1f s, total %.1f s",
                static_cast<unsigned long long>(r.iteration),
                r.forward_seconds, r.backward_seconds, r.update_seconds,
                r.iteration_seconds());
    if (r.recoveries > 0) {
      std::printf("  [recovered %u node loss(es): %.1f s, %u iter(s) redone]",
                  r.recoveries, r.recovery_seconds, r.lost_work_iterations);
    }
    std::printf("\n");
  }
  if (const RecoveryStats* stats = trainer.recovery_stats()) {
    std::printf("\nResilience: %u checkpoint(s) (%.1f s), %u recover(ies) "
                "(%.1f s), %u subgroup(s) restored, %llu queued request(s) "
                "cancelled\n",
                stats->checkpoints_taken, stats->checkpoint_seconds,
                stats->recoveries, stats->recovery_seconds,
                stats->restored_subgroups,
                static_cast<unsigned long long>(stats->cancelled_requests));
  }
  return 0;
}
