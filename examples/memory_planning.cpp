// Memory planning: check whether a model/testbed configuration satisfies
// the paper's §4.1 feasibility constraints before running it — the same
// arithmetic DeepSpeed's memory estimator exposes.
//
// Usage: memory_planning [model] [gpu_gb] [world]
//   memory_planning 120B            (defaults: 80 GB GPUs, one node)
//   memory_planning 280B 40 32      (A100-40GB, 32 ranks)
#include <cstdio>
#include <cstdlib>

#include "runtime/memory_planner.hpp"

int main(int argc, char** argv) {
  using namespace mlpo;

  PlannerInput input;
  input.testbed = TestbedSpec::testbed1();
  std::string model_name = argc > 1 ? argv[1] : "120B";
  try {
    input.model = model_name == "20B" ? baseline_20b() : paper_model(model_name);
  } catch (const std::exception&) {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return 1;
  }
  if (argc > 2) input.gpu_memory_bytes = std::strtoull(argv[2], nullptr, 10) * GiB;
  if (argc > 3) input.total_world = static_cast<u32>(std::atoi(argv[3]));

  const auto plan = plan_memory(input);
  std::printf("Feasibility plan for %s (%u ranks, %.0f GB GPUs):\n\n",
              input.model.name.c_str(),
              input.total_world ? input.total_world
                                : input.testbed.gpus_per_node,
              static_cast<f64>(input.gpu_memory_bytes) / 1e9);
  std::printf("%s\n", plan.to_string().c_str());
  std::printf("Verdict: %s\n",
              plan.feasible() ? "configuration fits"
                              : "configuration DOES NOT fit");
  return plan.feasible() ? 0 : 2;
}
