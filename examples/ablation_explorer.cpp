// Ablation explorer: toggle MLP-Offload's design principles and swap the
// pluggable placement/ordering policies from the command line, then see the
// iteration-time impact on any Table-2 model.
//
// Usage:
//   ablation_explorer [model] [preset=<bundle>] [+|-multipath] [+|-cache]
//                     [+|-delayed] [+|-locking]
//                     [placement=<policy>] [order=<policy>]
// Examples:
//   ablation_explorer 70B +multipath +cache -delayed -locking
//   ablation_explorer 40B placement=round_robin order=host_resident_first
//   ablation_explorer 40B preset=deepspeed_zero3
#include <cstdio>
#include <cstring>
#include <string>

#include "policy/policy_registry.hpp"
#include "runtime/trainer.hpp"

int main(int argc, char** argv) {
  using namespace mlpo;

  std::string model_name = "40B";
  EngineOptions opts = EngineOptions::mlp_offload();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool enable = arg.size() > 1 && arg[0] == '+';
    const bool disable = arg.size() > 1 && arg[0] == '-';
    const std::string flag = enable || disable ? arg.substr(1) : arg;
    if (flag == "multipath") {
      opts.multipath = enable;
    } else if (flag == "cache") {
      opts.update_order_policy =
          enable ? "alternating_cache_friendly" : "ascending";
    } else if (flag == "delayed") {
      opts.delayed_grad_conversion = enable;
    } else if (flag == "locking") {
      opts.tier_exclusive_locking = enable;
    } else if (flag.rfind("preset=", 0) == 0) {
      try {
        opts = EngineOptions::preset(flag.substr(7));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "configuration error: %s\n", e.what());
        return 1;
      }
    } else if (flag.rfind("placement=", 0) == 0) {
      opts.placement_policy = flag.substr(10);
    } else if (flag.rfind("order=", 0) == 0) {
      opts.update_order_policy = flag.substr(6);
    } else if (flag == "help" || flag == "h") {
      std::printf("usage: %s [model] [preset=<bundle>] [+|-multipath] "
                  "[+|-cache] [+|-delayed] [+|-locking] "
                  "[placement=<policy>] [order=<policy>]\n", argv[0]);
      std::printf("placement policies:");
      for (const auto& n : placement_policy_names()) {
        std::printf(" %s", n.c_str());
      }
      std::printf("\norder policies:");
      for (const auto& n : update_order_policy_names()) {
        std::printf(" %s", n.c_str());
      }
      std::printf("\npresets:");
      for (const auto& n : EngineOptions::preset_names()) {
        std::printf(" %s", n.c_str());
      }
      std::printf("\n");
      return 0;
    } else {
      model_name = flag;
    }
  }

  TrainerConfig cfg;
  try {
    cfg.model = paper_model(model_name);
    cfg.engine = opts;
    cfg.engine.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "configuration error: %s\n", e.what());
    return 1;
  }
  cfg.testbed = TestbedSpec::testbed1();
  cfg.elem_scale = 65536;
  cfg.time_scale = 1000.0;

  std::printf("Model %s | multipath=%d placement=%s order=%s "
              "delayed_grad_conversion=%d tier_exclusive_locking=%d\n\n",
              cfg.model.name.c_str(), opts.multipath,
              opts.placement_policy.c_str(), opts.update_order_policy.c_str(),
              opts.delayed_grad_conversion, opts.tier_exclusive_locking);

  Trainer trainer(cfg);
  trainer.initialize();
  const auto avg = average_reports(trainer.run(4, 1));
  std::printf("fwd %.2f s | bwd %.1f s | update %.1f s | total %.1f s | "
              "%.0f Mparam/s | %u cache hits/iter\n",
              avg.forward_seconds, avg.backward_seconds, avg.update_seconds,
              avg.iteration_seconds(), avg.update_throughput_mparams(),
              avg.host_cache_hits);
  return 0;
}
