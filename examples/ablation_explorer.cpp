// Ablation explorer: toggle MLP-Offload's four design principles from the
// command line and see the iteration-time impact on any Table-2 model.
//
// Usage:
//   ablation_explorer [model] [+|-multipath] [+|-cache] [+|-delayed] [+|-locking]
// Examples:
//   ablation_explorer 70B +multipath +cache -delayed -locking
//   ablation_explorer 40B            (defaults: everything on)
#include <cstdio>
#include <cstring>
#include <string>

#include "runtime/trainer.hpp"

int main(int argc, char** argv) {
  using namespace mlpo;

  std::string model_name = "40B";
  EngineOptions opts = EngineOptions::mlp_offload();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool enable = arg.size() > 1 && arg[0] == '+';
    const bool disable = arg.size() > 1 && arg[0] == '-';
    const std::string flag = enable || disable ? arg.substr(1) : arg;
    if (flag == "multipath") {
      opts.multipath = enable;
    } else if (flag == "cache") {
      opts.cache_friendly_order = enable;
    } else if (flag == "delayed") {
      opts.delayed_grad_conversion = enable;
    } else if (flag == "locking") {
      opts.tier_exclusive_locking = enable;
    } else if (flag == "help" || flag == "h") {
      std::printf("usage: %s [model] [+|-multipath] [+|-cache] [+|-delayed] "
                  "[+|-locking]\n", argv[0]);
      return 0;
    } else {
      model_name = flag;
    }
  }

  TrainerConfig cfg;
  try {
    cfg.model = paper_model(model_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "unknown model '%s' (try 40B..280B)\n",
                 model_name.c_str());
    return 1;
  }
  cfg.testbed = TestbedSpec::testbed1();
  cfg.engine = opts;
  cfg.elem_scale = 65536;
  cfg.time_scale = 1000.0;

  std::printf("Model %s | multipath=%d cache_friendly_order=%d "
              "delayed_grad_conversion=%d tier_exclusive_locking=%d\n\n",
              cfg.model.name.c_str(), opts.multipath,
              opts.cache_friendly_order, opts.delayed_grad_conversion,
              opts.tier_exclusive_locking);

  Trainer trainer(cfg);
  trainer.initialize();
  const auto avg = average_reports(trainer.run(4, 1));
  std::printf("fwd %.2f s | bwd %.1f s | update %.1f s | total %.1f s | "
              "%.0f Mparam/s | %u cache hits/iter\n",
              avg.forward_seconds, avg.backward_seconds, avg.update_seconds,
              avg.iteration_seconds(), avg.update_throughput_mparams(),
              avg.host_cache_hits);
  return 0;
}
