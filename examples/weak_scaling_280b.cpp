// Weak-scaling scenario: pre-train the 280B (Gopher-class) model across 8
// emulated Polaris nodes (32 A100 GPUs) — the paper's largest configuration
// (§4.4). Tensor parallelism inside each node, ZeRO-3 data parallelism
// across nodes, node-local NVMe plus one shared Lustre fabric.
#include <cstdio>

#include "runtime/trainer.hpp"
#include "telemetry/table_printer.hpp"

int main() {
  using namespace mlpo;
  std::printf("280B pre-training on 8 emulated Polaris nodes (32x A100-40GB)\n\n");

  TrainerConfig cfg;
  cfg.model = paper_model("280B");
  cfg.testbed = TestbedSpec::testbed2();
  cfg.engine = EngineOptions::mlp_offload();
  cfg.nodes = 8;
  cfg.elem_scale = 262144;  // keep 2.8 TB of simulated state in ~tens of MB
  cfg.time_scale = 1000.0;

  Trainer trainer(cfg);
  trainer.initialize();

  TablePrinter table({"Iter", "Fwd (s)", "Bwd (s)", "Update (s)", "Total (s)",
                      "Cluster Mparam/s"});
  for (const auto& r : trainer.run(3, 0)) {
    table.add_row({std::to_string(r.iteration),
                   TablePrinter::num(r.forward_seconds, 1),
                   TablePrinter::num(r.backward_seconds, 1),
                   TablePrinter::num(r.update_seconds, 1),
                   TablePrinter::num(r.iteration_seconds(), 1),
                   TablePrinter::num(r.update_throughput_mparams())});
  }
  table.print();

  const auto dist = trainer.distribution();
  const f64 tb = 1e12;
  std::printf("\nOptimizer state (%.2f TB total): host %.2f TB, NVMe %.2f TB, "
              "PFS %.2f TB\n",
              static_cast<f64>(cfg.model.optimizer_state_bytes()) / tb,
              static_cast<f64>(dist.host_sim_bytes) / tb,
              static_cast<f64>(dist.path_sim_bytes[0]) / tb,
              dist.path_sim_bytes.size() > 1
                  ? static_cast<f64>(dist.path_sim_bytes[1]) / tb
                  : 0.0);
  std::printf("A GPU-only run of this model would need ~350 A100-40GB GPUs "
              "just for memory;\nthis setup uses 32.\n");
  return 0;
}
