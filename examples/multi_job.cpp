// Multi-job: run three tenants — a heavy production job, a deadline-bound
// interactive job, and a background job — concurrently over one shared
// substrate (one SimClock, one NVMe/PFS tier set, one tenant-fair
// IoScheduler), then print per-job SLO accounting and the fair-share
// byte split the weighted deficit-round-robin produced.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/multi_job
#include <cstdio>

#include "runtime/job_manager.hpp"

int main() {
  using namespace mlpo;

  // 1. A per-job TrainerConfig, exactly as a solo run would build it.
  //    All jobs must agree on testbed/time_scale/storage — they share
  //    the hardware; everything else (model, preset, policies) is theirs.
  auto job_config = [] {
    TrainerConfig cfg;
    cfg.model = ModelConfig{"tiny", 4, 4096, 32};  // small => fast demo
    cfg.engine = EngineOptions::mlp_offload();
    cfg.elem_scale = 65536;
    cfg.time_scale = 2000.0;
    cfg.host_cache_override = 2;
    return cfg;
  }();

  // 2. Three tenants with skewed fair-share weights. "interactive"
  //    carries a per-iteration SLO deadline (virtual seconds); the other
  //    two have none, so every iteration counts as a hit.
  JobManagerConfig cfg;
  for (const auto& [name, weight, deadline] :
       {std::tuple{"prod-heavy", 3u, 0.0},
        std::tuple{"interactive", 2u, 30.0},
        std::tuple{"background", 1u, 0.0}}) {
    JobSpec spec;
    spec.name = name;
    spec.config = job_config;
    spec.weight = weight;
    spec.deadline_seconds = deadline;
    spec.iterations = 4;
    spec.warmup = 1;
    cfg.jobs.push_back(spec);
  }

  // 3. Construction is where admission happens: each job's host-memory
  //    demand is planned and reserved up front, and a job that does not
  //    fit throws AdmissionError here — before anything runs.
  JobManager manager(std::move(cfg));

  // 4. Run all jobs concurrently (one thread each) over the shared
  //    substrate. Results come back in spec order.
  const auto results = manager.run();

  std::printf("job          | w | iters | mean (s) |  p99 (s) | SLO hit | checksum\n");
  std::printf("-------------+---+-------+----------+----------+---------+-----------------\n");
  for (const auto& r : results) {
    std::printf("%-12s | %u | %5u | %8.2f | %8.2f | %6.0f%% | %016llx\n",
                r.name.c_str(), r.weight, r.slo.iterations,
                r.slo.mean_iteration_seconds, r.slo.p99_iteration_seconds,
                r.slo.hit_rate * 100.0,
                static_cast<unsigned long long>(r.state_checksum));
  }

  // 5. The fair-share split: per-tenant bytes moved through the shared
  //    scheduler. Weights bite only while tenants are backlogged — a job
  //    that finishes early is demand-limited, not starved.
  std::printf("\nShared-scheduler byte split (weighted DRR):\n");
  u64 total = 0;
  for (const auto& r : results) {
    const auto ts = manager.substrate().io().tenant_stats(r.tenant);
    u64 bytes = 0;
    for (const auto& p : ts.priority) bytes += p.sim_bytes;
    total += bytes;
    std::printf("  %-12s weight %u: %7.1f MiB\n", r.name.c_str(), r.weight,
                static_cast<f64>(bytes) / (1024.0 * 1024.0));
  }
  std::printf("  total                 %7.1f MiB\n",
              static_cast<f64>(total) / (1024.0 * 1024.0));
  return 0;
}
