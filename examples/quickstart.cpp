// Quickstart: train a 40B-class model with MLP-Offload on an emulated
// 4xH100 node (Testbed-1) and print the per-iteration phase breakdown.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "runtime/trainer.hpp"

int main() {
  using namespace mlpo;

  // 1. Describe the scenario: model, hardware, engine features.
  TrainerConfig cfg;
  cfg.model = paper_model("40B");           // Table-2 model
  cfg.testbed = TestbedSpec::testbed1();    // 4x H100, NVMe + VAST PFS
  cfg.engine = EngineOptions::mlp_offload();// all four design principles on
  cfg.elem_scale = 65536;                   // scale-reduced tensors
  cfg.time_scale = 1000.0;                  // 1000 virtual secs per real sec

  // 2. Build the trainer and distribute the optimizer state across tiers.
  Trainer trainer(cfg);
  trainer.initialize();

  // 3. Train. Each iteration runs forward, backward (gradients stream to
  //    the host), and the multi-path offloaded update phase.
  std::printf("iter |   fwd (s) |   bwd (s) | update (s) | total (s) | cache hits\n");
  std::printf("-----+-----------+-----------+------------+-----------+-----------\n");
  for (const auto& r : trainer.run(/*iterations=*/4, /*warmup=*/0)) {
    std::printf("%4llu | %9.2f | %9.2f | %10.1f | %9.1f | %u\n",
                static_cast<unsigned long long>(r.iteration),
                r.forward_seconds, r.backward_seconds, r.update_seconds,
                r.iteration_seconds(), r.host_cache_hits);
  }

  // 4. Where does the optimizer state live now?
  const auto dist = trainer.distribution();
  std::printf("\nOptimizer state placement: host %.0f GB",
              static_cast<f64>(dist.host_sim_bytes) / 1e9);
  const char* names[] = {"NVMe", "PFS"};
  for (std::size_t p = 0; p < dist.path_sim_bytes.size(); ++p) {
    std::printf(", %s %.0f GB", p < 2 ? names[p] : "path",
                static_cast<f64>(dist.path_sim_bytes[p]) / 1e9);
  }
  std::printf("\n");
  return 0;
}
