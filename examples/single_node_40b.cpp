// Single-node 40B pre-training scenario (the paper's headline comparison):
// DeepSpeed ZeRO-3 NVMe offloading vs MLP-Offload on the same emulated
// 4xH100 node, including the backward-phase gradient-flush difference and
// the update-phase multi-path win.
#include <cstdio>

#include "runtime/trainer.hpp"
#include "telemetry/table_printer.hpp"

int main() {
  using namespace mlpo;
  std::printf("Single-node 40B pre-training: DeepSpeed ZeRO-3 vs MLP-Offload\n");
  std::printf("(emulated Testbed-1: 4x H100, NVMe 6.9/5.3 GB/s, VAST 3.6/3.6 GB/s)\n\n");

  TablePrinter table({"Engine", "Fwd (s)", "Bwd (s)", "Update (s)", "Total (s)",
                      "Update Mparam/s", "Cache hits"});
  f64 totals[2] = {0, 0};
  for (const int mlp : {0, 1}) {
    TrainerConfig cfg;
    cfg.model = paper_model("40B");
    cfg.testbed = TestbedSpec::testbed1();
    cfg.engine = mlp ? EngineOptions::mlp_offload()
                     : EngineOptions::deepspeed_zero3();
    cfg.attach_pfs = mlp != 0;  // the baseline has no PFS path
    cfg.elem_scale = 65536;
    cfg.time_scale = 1000.0;

    Trainer trainer(cfg);
    trainer.initialize();
    const auto avg = average_reports(trainer.run(4, 1));
    totals[mlp] = avg.iteration_seconds();
    table.add_row({mlp ? "MLP-Offload" : "DeepSpeed ZeRO-3",
                   TablePrinter::num(avg.forward_seconds, 2),
                   TablePrinter::num(avg.backward_seconds, 1),
                   TablePrinter::num(avg.update_seconds, 1),
                   TablePrinter::num(avg.iteration_seconds(), 1),
                   TablePrinter::num(avg.update_throughput_mparams()),
                   std::to_string(avg.host_cache_hits)});
  }
  table.print();
  std::printf("\nEnd-to-end speedup: %.2fx (paper reports ~2.5x on real hardware)\n",
              totals[0] / totals[1]);
  return 0;
}
